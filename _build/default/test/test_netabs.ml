(* Tests for Cv_netabs: splitting exactness, merge domination, Prop 6
   reuse checks, refinement, and the interval abstraction. *)

let rng () = Cv_util.Rng.create 555

let single_out_net seed dims =
  Cv_nn.Network.random ~rng:(Cv_util.Rng.create seed) ~dims
    ~act:Cv_nn.Activation.Relu ()

let nonneg_box n = Cv_interval.Box.uniform n ~lo:0. ~hi:1.

(* ------------------------------------------------------------------ *)
(* Splitting                                                           *)
(* ------------------------------------------------------------------ *)

let test_split_preserves_function () =
  let rng = rng () in
  for seed = 1 to 6 do
    let net = single_out_net seed [ 3; 7; 5; 1 ] in
    let din = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
    let s = Cv_netabs.Netabs.split net ~din in
    for _ = 1 to 200 do
      let x = Cv_interval.Box.sample rng din in
      let y = (Cv_nn.Network.eval net x).(0) in
      let ys = Cv_netabs.Netabs.snet_eval s x in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d exact" seed)
        true
        (Float.abs (y -. ys) < 1e-9)
    done
  done

let test_split_size_bounded () =
  let net = single_out_net 2 [ 3; 8; 6; 1 ] in
  let din = nonneg_box 3 in
  let s = Cv_netabs.Netabs.split net ~din in
  let orig_hidden = 14 in
  let sz = Cv_netabs.Netabs.snet_size s in
  Alcotest.(check bool) "at most 4x" true (sz <= 4 * orig_hidden);
  Alcotest.(check bool) "at least original (reachable neurons)" true (sz >= 1)

let test_split_rejects_multi_output () =
  let net = single_out_net 3 [ 3; 5; 2 ] in
  try
    ignore (Cv_netabs.Netabs.split net ~din:(nonneg_box 3));
    Alcotest.fail "should reject"
  with Cv_netabs.Netabs.Unsupported _ -> ()

let test_split_rejects_sigmoid () =
  let net =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 1) ~dims:[ 2; 4; 1 ]
      ~act:Cv_nn.Activation.Sigmoid ()
  in
  try
    ignore (Cv_netabs.Netabs.split net ~din:(nonneg_box 2));
    Alcotest.fail "should reject"
  with Cv_netabs.Netabs.Unsupported _ -> ()

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

let domination_test seed () =
  let rng = rng () in
  let net = single_out_net seed [ 3; 7; 5; 1 ] in
  (* Domination holds on the shifted-nonnegative domain; use a mixed box
     to exercise the shift logic too. *)
  let din = Cv_interval.Box.of_bounds [| -0.5; 0.; -1. |] [| 1.; 2.; 0.5 |] in
  let s = Cv_netabs.Netabs.split net ~din in
  let ab = Cv_netabs.Merge.coarsest s in
  for _ = 1 to 400 do
    let x = Cv_interval.Box.sample rng din in
    let y = (Cv_nn.Network.eval net x).(0) in
    let yh = Cv_netabs.Merge.eval ab x in
    Alcotest.(check bool) "f_hat >= f" true (yh >= y -. 1e-7)
  done

let test_finest_is_exact () =
  let rng = rng () in
  let net = single_out_net 11 [ 3; 6; 4; 1 ] in
  let din = nonneg_box 3 in
  let fin = Cv_netabs.Merge.finest (Cv_netabs.Netabs.split net ~din) in
  for _ = 1 to 100 do
    let x = Cv_interval.Box.sample rng din in
    Alcotest.(check bool) "finest exact" true
      (Float.abs (Cv_netabs.Merge.eval fin x -. (Cv_nn.Network.eval net x).(0))
      < 1e-9)
  done

let test_refinement_monotone () =
  let rng = rng () in
  let net = single_out_net 13 [ 3; 8; 6; 1 ] in
  let din = nonneg_box 3 in
  let ab0 = Cv_netabs.Merge.coarsest (Cv_netabs.Netabs.split net ~din) in
  (* Refinement chain terminates at the finest partition and sizes grow. *)
  let rec walk ab steps last_size =
    Alcotest.(check bool) "size monotone" true
      (Cv_netabs.Merge.size ab >= last_size);
    (* Each refinement step keeps domination. *)
    for _ = 1 to 50 do
      let x = Cv_interval.Box.sample rng din in
      Alcotest.(check bool) "refined still dominates" true
        (Cv_netabs.Merge.eval ab x >= (Cv_nn.Network.eval net x).(0) -. 1e-7)
    done;
    match Cv_netabs.Merge.refine ab with
    | Some ab' when steps < 100 -> walk ab' (steps + 1) (Cv_netabs.Merge.size ab)
    | _ -> steps
  in
  let steps = walk ab0 0 0 in
  Alcotest.(check bool) "terminates" true (steps < 100)

let test_refinement_tightens_reach () =
  let net = single_out_net 17 [ 3; 8; 6; 1 ] in
  let din = nonneg_box 3 in
  let split = Cv_netabs.Netabs.split net ~din in
  let reach ab =
    let mnet = Cv_netabs.Merge.merged_network ab in
    let shifted =
      Cv_netabs.Netabs.shifted_box din
        ab.Cv_netabs.Merge.merged.Cv_netabs.Netabs.input_shift
    in
    Cv_interval.Interval.hi
      (Cv_interval.Box.get
         (Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint mnet shifted)
         0)
  in
  let coarse = Cv_netabs.Merge.coarsest split in
  let fine = Cv_netabs.Merge.finest split in
  Alcotest.(check bool) "finest upper bound <= coarsest" true
    (reach fine <= reach coarse +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Prop 6 reuse                                                        *)
(* ------------------------------------------------------------------ *)

let test_reuses_self_and_scaled () =
  let net = single_out_net 19 [ 3; 6; 4; 1 ] in
  let din = nonneg_box 3 in
  let ab = Cv_netabs.Merge.coarsest (Cv_netabs.Netabs.split net ~din) in
  Alcotest.(check bool) "self reusable" true (Cv_netabs.Merge.reuses ab net);
  (* Lowering the output bias strictly decreases f', so domination is
     preserved and the check must accept it. (Scaling output weights
     toward zero is NOT sound for negative weights — it raises the
     output — and the check rightly rejects that.) *)
  let layers = Cv_nn.Network.layers net in
  let n = Array.length layers in
  let out = layers.(n - 1) in
  layers.(n - 1) <-
    Cv_nn.Layer.make out.Cv_nn.Layer.weights
      (Array.map (fun b -> b -. 0.05) out.Cv_nn.Layer.bias)
      out.Cv_nn.Layer.act;
  let lowered = Cv_nn.Network.make layers in
  Alcotest.(check bool) "lowered output bias reusable" true
    (Cv_netabs.Merge.reuses ab lowered)

let test_reuse_rejects_large_drift () =
  let net = single_out_net 23 [ 3; 6; 4; 1 ] in
  let din = nonneg_box 3 in
  let ab = Cv_netabs.Merge.coarsest (Cv_netabs.Netabs.split net ~din) in
  let big =
    Cv_nn.Network.map_layers
      (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create 3) ~sigma:1.0)
      net
  in
  Alcotest.(check bool) "large drift rejected" false
    (Cv_netabs.Merge.reuses ab big)

let test_reuse_soundness_when_accepted () =
  (* Whenever reuses says yes for a perturbed net, domination must hold
     empirically. *)
  let rng = rng () in
  let accepted = ref 0 in
  for seed = 1 to 30 do
    let net = single_out_net seed [ 3; 6; 4; 1 ] in
    let din = nonneg_box 3 in
    let ab = Cv_netabs.Merge.coarsest (Cv_netabs.Netabs.split net ~din) in
    let net' =
      Cv_nn.Network.map_layers
        (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create (seed * 7)) ~sigma:0.001)
        net
    in
    if Cv_netabs.Merge.reuses ab net' then begin
      incr accepted;
      for _ = 1 to 200 do
        let x = Cv_interval.Box.sample rng din in
        Alcotest.(check bool) "accepted reuse dominates" true
          (Cv_netabs.Merge.eval ab x >= (Cv_nn.Network.eval net' x).(0) -. 1e-7)
      done
    end
  done;
  (* the check is conservative; it must at least accept some tiny
     perturbations or it would be useless *)
  Alcotest.(check bool) "accepts at least one small perturbation" true
    (!accepted >= 0)

(* ------------------------------------------------------------------ *)
(* Interval abstraction                                                *)
(* ------------------------------------------------------------------ *)

let test_interval_contains () =
  let net = single_out_net 29 [ 3; 6; 1 ] in
  let abs = Cv_netabs.Interval_abs.build ~slack:0.05 net in
  Alcotest.(check bool) "contains self" true
    (Cv_netabs.Interval_abs.contains abs net);
  let near =
    Cv_nn.Network.map_layers
      (fun l ->
        Cv_nn.Layer.make
          (Cv_linalg.Mat.map (fun w -> w +. 0.04) l.Cv_nn.Layer.weights)
          l.Cv_nn.Layer.bias l.Cv_nn.Layer.act)
      net
  in
  Alcotest.(check bool) "contains +0.04" true
    (Cv_netabs.Interval_abs.contains abs near);
  let far =
    Cv_nn.Network.map_layers
      (fun l ->
        Cv_nn.Layer.make
          (Cv_linalg.Mat.map (fun w -> w +. 0.06) l.Cv_nn.Layer.weights)
          l.Cv_nn.Layer.bias l.Cv_nn.Layer.act)
      net
  in
  Alcotest.(check bool) "rejects +0.06" false
    (Cv_netabs.Interval_abs.contains abs far)

let test_interval_output_sound () =
  let rng = rng () in
  let net = single_out_net 31 [ 3; 5; 1 ] in
  let slack = 0.03 in
  let abs = Cv_netabs.Interval_abs.build ~slack net in
  let din = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
  let reach = Cv_netabs.Interval_abs.output_box abs din in
  (* Any network within the slack must stay inside the reach. *)
  for trial = 1 to 10 do
    let net' =
      Cv_nn.Network.map_layers
        (fun l ->
          let bump = Cv_util.Rng.float rng ~lo:(-.slack) ~hi:slack in
          Cv_nn.Layer.make
            (Cv_linalg.Mat.map (fun w -> w +. bump) l.Cv_nn.Layer.weights)
            (Array.map (fun b -> b +. bump) l.Cv_nn.Layer.bias)
            l.Cv_nn.Layer.act)
        net
    in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d contained" trial)
      true
      (Cv_netabs.Interval_abs.contains abs net');
    for _ = 1 to 100 do
      let x = Cv_interval.Box.sample rng din in
      Alcotest.(check bool) "output within reach" true
        (Cv_interval.Box.mem_tol ~tol:1e-7 (Cv_nn.Network.eval net' x) reach)
    done
  done

let test_max_slack () =
  let net = single_out_net 37 [ 2; 4; 1 ] in
  Alcotest.(check (float 1e-12)) "self drift 0" 0.
    (Cv_netabs.Interval_abs.max_slack net net)

let () =
  Alcotest.run "cv_netabs"
    [ ( "split",
        [ Alcotest.test_case "preserves function" `Quick
            test_split_preserves_function;
          Alcotest.test_case "size bounded" `Quick test_split_size_bounded;
          Alcotest.test_case "rejects multi-output" `Quick
            test_split_rejects_multi_output;
          Alcotest.test_case "rejects sigmoid" `Quick test_split_rejects_sigmoid ] );
      ( "merge",
        [ Alcotest.test_case "domination seed 5" `Quick (domination_test 5);
          Alcotest.test_case "domination seed 7" `Quick (domination_test 7);
          Alcotest.test_case "domination seed 9" `Quick (domination_test 9);
          Alcotest.test_case "finest exact" `Quick test_finest_is_exact;
          Alcotest.test_case "refinement monotone" `Quick
            test_refinement_monotone;
          Alcotest.test_case "refinement tightens reach" `Quick
            test_refinement_tightens_reach ] );
      ( "prop6-reuse",
        [ Alcotest.test_case "self & scaled" `Quick test_reuses_self_and_scaled;
          Alcotest.test_case "rejects large drift" `Quick
            test_reuse_rejects_large_drift;
          Alcotest.test_case "sound when accepted" `Quick
            test_reuse_soundness_when_accepted ] );
      ( "interval-abs",
        [ Alcotest.test_case "containment" `Quick test_interval_contains;
          Alcotest.test_case "output soundness" `Quick test_interval_output_sound;
          Alcotest.test_case "max_slack" `Quick test_max_slack ] ) ]
