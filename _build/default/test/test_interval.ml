(* Tests for Cv_interval: interval arithmetic and boxes. *)

let check_float = Alcotest.(check (float 1e-9))

let iv lo hi = Cv_interval.Interval.make lo hi

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let test_make_validation () =
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Interval.make: lo 2 > hi 1") (fun () ->
      ignore (iv 2. 1.));
  Alcotest.check_raises "nan" (Invalid_argument "Interval.make: NaN")
    (fun () -> ignore (iv Float.nan 1.))

let test_basic_accessors () =
  let i = iv (-1.) 3. in
  check_float "lo" (-1.) (Cv_interval.Interval.lo i);
  check_float "hi" 3. (Cv_interval.Interval.hi i);
  check_float "width" 4. (Cv_interval.Interval.width i);
  check_float "center" 1. (Cv_interval.Interval.center i);
  check_float "radius" 2. (Cv_interval.Interval.radius i);
  Alcotest.(check bool) "mem" true (Cv_interval.Interval.mem 0. i);
  Alcotest.(check bool) "mem bound" true (Cv_interval.Interval.mem 3. i);
  Alcotest.(check bool) "not mem" false (Cv_interval.Interval.mem 3.1 i)

let test_empty () =
  let e = Cv_interval.Interval.empty in
  Alcotest.(check bool) "is_empty" true (Cv_interval.Interval.is_empty e);
  Alcotest.(check bool) "mem" false (Cv_interval.Interval.mem 0. e);
  Alcotest.(check bool) "subset of anything" true
    (Cv_interval.Interval.subset e (iv 0. 1.));
  check_float "width" 0. (Cv_interval.Interval.width e);
  Alcotest.(check bool) "join identity" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.join e (iv 1. 2.)) (iv 1. 2.))

let test_arithmetic () =
  let a = iv 1. 2. and b = iv (-1.) 3. in
  Alcotest.(check bool) "add" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.add a b) (iv 0. 5.));
  Alcotest.(check bool) "sub" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.sub a b) (iv (-2.) 3.));
  Alcotest.(check bool) "neg" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.neg b) (iv (-3.) 1.));
  Alcotest.(check bool) "scale pos" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.scale 2. a) (iv 2. 4.));
  Alcotest.(check bool) "scale neg" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.scale (-2.) a) (iv (-4.) (-2.)));
  Alcotest.(check bool) "mul" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.mul a b) (iv (-2.) 6.));
  Alcotest.(check bool) "shift" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.shift 10. a) (iv 11. 12.))

let test_join_meet () =
  let a = iv 0. 2. and b = iv 1. 3. and c = iv 5. 6. in
  Alcotest.(check bool) "join" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.join a b) (iv 0. 3.));
  Alcotest.(check bool) "meet" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.meet a b) (iv 1. 2.));
  Alcotest.(check bool) "disjoint meet empty" true
    (Cv_interval.Interval.is_empty (Cv_interval.Interval.meet a c))

let test_relu_leaky () =
  Alcotest.(check bool) "relu spanning" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.relu (iv (-2.) 3.)) (iv 0. 3.));
  Alcotest.(check bool) "relu negative" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.relu (iv (-2.) (-1.))) (iv 0. 0.));
  Alcotest.(check bool) "leaky" true
    (Cv_interval.Interval.equal
       (Cv_interval.Interval.leaky_relu 0.1 (iv (-2.) 3.))
       (iv (-0.2) 3.))

let test_expand_dist () =
  Alcotest.(check bool) "expand" true
    (Cv_interval.Interval.equal (Cv_interval.Interval.expand 1. (iv 0. 1.)) (iv (-1.) 2.));
  Alcotest.check_raises "negative radius"
    (Invalid_argument "Interval.expand: negative radius") (fun () ->
      ignore (Cv_interval.Interval.expand (-1.) (iv 0. 1.)));
  check_float "dist inside" 0. (Cv_interval.Interval.dist_point 0.5 (iv 0. 1.));
  check_float "dist left" 1. (Cv_interval.Interval.dist_point (-1.) (iv 0. 1.));
  check_float "dist right" 2. (Cv_interval.Interval.dist_point 3. (iv 0. 1.));
  check_float "hausdorff" 2.
    (Cv_interval.Interval.hausdorff_directed (iv 0. 3.) (iv 0. 1.))

let test_split_sample () =
  let l, r = Cv_interval.Interval.split (iv 0. 2.) in
  Alcotest.(check bool) "left" true (Cv_interval.Interval.equal l (iv 0. 1.));
  Alcotest.(check bool) "right" true (Cv_interval.Interval.equal r (iv 1. 2.));
  let rng = Cv_util.Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "sample in" true
      (Cv_interval.Interval.mem (Cv_interval.Interval.sample rng (iv 2. 5.)) (iv 2. 5.))
  done

let test_json () =
  let i = iv (-1.25) 3.5 in
  Alcotest.(check bool) "roundtrip" true
    (Cv_interval.Interval.equal i
       (Cv_interval.Interval.of_json (Cv_interval.Interval.to_json i)))

let interval_add_sound_prop =
  QCheck.Test.make ~name:"interval add soundness" ~count:300
    QCheck.(quad (float_range (-5.) 5.) (float_range 0. 3.)
              (float_range (-5.) 5.) (float_range 0. 3.))
    (fun (a, wa, b, wb) ->
      let ia = iv a (a +. wa) and ib = iv b (b +. wb) in
      let s = Cv_interval.Interval.add ia ib in
      (* endpoints and midpoints of the operands sum into s *)
      List.for_all
        (fun (x, y) -> Cv_interval.Interval.mem_tol ~tol:1e-9 (x +. y) s)
        [ (a, b); (a +. wa, b +. wb); (a +. (wa /. 2.), b +. (wb /. 2.)) ])

let interval_mul_sound_prop =
  QCheck.Test.make ~name:"interval mul soundness" ~count:300
    QCheck.(quad (float_range (-5.) 5.) (float_range 0. 3.)
              (float_range (-5.) 5.) (float_range 0. 3.))
    (fun (a, wa, b, wb) ->
      let ia = iv a (a +. wa) and ib = iv b (b +. wb) in
      let s = Cv_interval.Interval.mul ia ib in
      List.for_all
        (fun (x, y) -> Cv_interval.Interval.mem_tol ~tol:1e-6 (x *. y) s)
        [ (a, b); (a +. wa, b); (a, b +. wb); (a +. wa, b +. wb);
          (a +. (wa /. 2.), b +. (wb /. 2.)) ])

(* ------------------------------------------------------------------ *)
(* Box                                                                 *)
(* ------------------------------------------------------------------ *)

let box2 = Cv_interval.Box.of_bounds [| 0.; -1. |] [| 2.; 1. |]

let test_box_basics () =
  Alcotest.(check int) "dim" 2 (Cv_interval.Box.dim box2);
  Alcotest.(check bool) "mem" true (Cv_interval.Box.mem [| 1.; 0. |] box2);
  Alcotest.(check bool) "not mem" false (Cv_interval.Box.mem [| 3.; 0. |] box2);
  Alcotest.(check (array (float 1e-9))) "center" [| 1.; 0. |]
    (Cv_interval.Box.center box2);
  Alcotest.(check (array (float 1e-9))) "lower" [| 0.; -1. |]
    (Cv_interval.Box.lower box2);
  Alcotest.(check (array (float 1e-9))) "upper" [| 2.; 1. |]
    (Cv_interval.Box.upper box2)

let test_box_subset_join () =
  let small = Cv_interval.Box.of_bounds [| 0.5; -0.5 |] [| 1.; 0.5 |] in
  Alcotest.(check bool) "subset" true (Cv_interval.Box.subset small box2);
  Alcotest.(check bool) "not subset" false (Cv_interval.Box.subset box2 small);
  let j = Cv_interval.Box.join box2 (Cv_interval.Box.point [| 5.; 0. |]) in
  Alcotest.(check bool) "join contains point" true
    (Cv_interval.Box.mem [| 5.; 0. |] j);
  Alcotest.(check bool) "join contains box" true (Cv_interval.Box.subset box2 j)

let test_box_width_split () =
  check_float "max_width" 2. (Cv_interval.Box.max_width box2);
  check_float "total_width" 4. (Cv_interval.Box.total_width box2);
  Alcotest.(check int) "widest axis" 0 (Cv_interval.Box.widest_axis box2);
  let l, r = Cv_interval.Box.split box2 in
  Alcotest.(check bool) "split left" true
    (Cv_interval.Box.equal l (Cv_interval.Box.of_bounds [| 0.; -1. |] [| 1.; 1. |]));
  Alcotest.(check bool) "split right" true
    (Cv_interval.Box.equal r (Cv_interval.Box.of_bounds [| 1.; -1. |] [| 2.; 1. |]))

let test_box_nearest_dist () =
  Alcotest.(check (array (float 1e-9))) "nearest inside" [| 1.; 0. |]
    (Cv_interval.Box.nearest_point [| 1.; 0. |] box2);
  Alcotest.(check (array (float 1e-9))) "nearest clamped" [| 2.; 1. |]
    (Cv_interval.Box.nearest_point [| 5.; 3. |] box2);
  check_float "dist inf" 3. (Cv_interval.Box.dist_point_inf [| 5.; 3. |] box2);
  check_float "dist l2" (sqrt 13.) (Cv_interval.Box.dist_point_l2 [| 5.; 3. |] box2)

let test_box_kappa () =
  (* Paper's Prop 3 example: D_in = [1,2]^2, enlarged [0.99, 2.01]^2:
     per-axis overhang 0.01 -> Linf kappa 0.01, L2 kappa sqrt(2)*0.01. *)
  let old_box = Cv_interval.Box.uniform 2 ~lo:1. ~hi:2. in
  let new_box = Cv_interval.Box.uniform 2 ~lo:0.99 ~hi:2.01 in
  check_float "Linf" 0.01
    (Cv_interval.Box.enlargement_kappa ~norm:`Linf ~old_box ~new_box);
  Alcotest.(check (float 1e-12)) "L2" (sqrt (2. *. (0.01 ** 2.)))
    (Cv_interval.Box.enlargement_kappa ~norm:`L2 ~old_box ~new_box)

let test_box_buffer_expand () =
  let b = Cv_interval.Box.of_bounds [| 0. |] [| 2. |] in
  let buffered = Cv_interval.Box.buffer 0.1 b in
  Alcotest.(check bool) "buffer widens" true
    (Cv_interval.Box.equal buffered (Cv_interval.Box.of_bounds [| -0.2 |] [| 2.2 |]));
  let degenerate = Cv_interval.Box.point [| 1. |] in
  let buffered_deg = Cv_interval.Box.buffer 0.1 degenerate in
  Alcotest.(check bool) "degenerate gets absolute buffer" true
    (Cv_interval.Box.equal buffered_deg
       (Cv_interval.Box.of_bounds [| 0.9 |] [| 1.1 |]));
  let e = Cv_interval.Box.expand 1. b in
  Alcotest.(check bool) "expand" true
    (Cv_interval.Box.equal e (Cv_interval.Box.of_bounds [| -1. |] [| 3. |]))

let test_box_corners () =
  let cs = Cv_interval.Box.corners box2 in
  Alcotest.(check int) "4 corners" 4 (List.length cs);
  List.iter
    (fun c ->
      Alcotest.(check bool) "corner in box" true (Cv_interval.Box.mem c box2))
    cs

let test_box_corners_guard () =
  let big = Cv_interval.Box.uniform 21 ~lo:0. ~hi:1. in
  try
    ignore (Cv_interval.Box.corners big);
    Alcotest.fail "should reject > 20 dims"
  with Invalid_argument _ -> ()

let test_box_meet_empty () =
  let a = Cv_interval.Box.uniform 2 ~lo:0. ~hi:1. in
  let b = Cv_interval.Box.uniform 2 ~lo:2. ~hi:3. in
  Alcotest.(check bool) "disjoint meet empty" true
    (Cv_interval.Box.is_empty (Cv_interval.Box.meet a b));
  Alcotest.(check bool) "self meet non-empty" false
    (Cv_interval.Box.is_empty (Cv_interval.Box.meet a a))

let test_box_json () =
  Alcotest.(check bool) "roundtrip" true
    (Cv_interval.Box.equal box2
       (Cv_interval.Box.of_json (Cv_interval.Box.to_json box2)))

let box_kappa_sound_prop =
  QCheck.Test.make ~name:"kappa bounds sampled distances" ~count:100
    QCheck.(pair (float_range 0. 0.5) (float_range 0. 0.5))
    (fun (dl, dr) ->
      let old_box = Cv_interval.Box.uniform 3 ~lo:0. ~hi:1. in
      let new_box = Cv_interval.Box.uniform 3 ~lo:(-.dl) ~hi:(1. +. dr) in
      let kappa =
        Cv_interval.Box.enlargement_kappa ~norm:`Linf ~old_box ~new_box
      in
      let rng = Cv_util.Rng.create 11 in
      let ok = ref true in
      for _ = 1 to 50 do
        let x = Cv_interval.Box.sample rng new_box in
        if Cv_interval.Box.dist_point_inf x old_box > kappa +. 1e-9 then
          ok := false
      done;
      !ok)

let () =
  Alcotest.run "cv_interval"
    [ ( "interval",
        [ Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "accessors" `Quick test_basic_accessors;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "join/meet" `Quick test_join_meet;
          Alcotest.test_case "relu/leaky" `Quick test_relu_leaky;
          Alcotest.test_case "expand/dist" `Quick test_expand_dist;
          Alcotest.test_case "split/sample" `Quick test_split_sample;
          Alcotest.test_case "json" `Quick test_json;
          QCheck_alcotest.to_alcotest interval_add_sound_prop;
          QCheck_alcotest.to_alcotest interval_mul_sound_prop ] );
      ( "box",
        [ Alcotest.test_case "basics" `Quick test_box_basics;
          Alcotest.test_case "subset/join" `Quick test_box_subset_join;
          Alcotest.test_case "width/split" `Quick test_box_width_split;
          Alcotest.test_case "nearest/dist" `Quick test_box_nearest_dist;
          Alcotest.test_case "kappa (paper example)" `Quick test_box_kappa;
          Alcotest.test_case "buffer/expand" `Quick test_box_buffer_expand;
          Alcotest.test_case "corners" `Quick test_box_corners;
          Alcotest.test_case "corners guard" `Quick test_box_corners_guard;
          Alcotest.test_case "meet empty" `Quick test_box_meet_empty;
          Alcotest.test_case "json" `Quick test_box_json;
          QCheck_alcotest.to_alcotest box_kappa_sound_prop ] ) ]
