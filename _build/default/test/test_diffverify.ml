(* Tests for Cv_diffverify: soundness and tightness of the differential
   interval analysis, and the prop-diff SVbTV route. *)

let rng () = Cv_util.Rng.create 4242

let base_net seed =
  Cv_nn.Network.random ~rng:(Cv_util.Rng.create seed) ~dims:[ 4; 7; 5; 1 ]
    ~act:Cv_nn.Activation.Relu ()

let perturbed net sigma seed =
  Cv_nn.Network.map_layers
    (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create seed) ~sigma)
    net

let box4 = Cv_interval.Box.uniform 4 ~lo:0. ~hi:1.

(* Soundness: the tracked delta bound dominates sampled differences. *)
let test_soundness () =
  let rng = rng () in
  for seed = 1 to 6 do
    let old_net = base_net seed in
    let new_net = perturbed old_net 0.01 (seed * 3) in
    let eps =
      Cv_diffverify.Diffverify.max_output_delta ~old_net ~new_net box4
    in
    for _ = 1 to 500 do
      let x = Cv_interval.Box.sample rng box4 in
      let d =
        Float.abs
          ((Cv_nn.Network.eval new_net x).(0) -. (Cv_nn.Network.eval old_net x).(0))
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: %.5f <= %.5f" seed d eps)
        true (d <= eps +. 1e-9)
    done
  done

let test_zero_for_identical () =
  let net = base_net 9 in
  Alcotest.(check (float 1e-12)) "identical nets" 0.
    (Cv_diffverify.Diffverify.max_output_delta ~old_net:net ~new_net:net box4)

let test_tighter_than_naive () =
  for seed = 1 to 5 do
    let old_net = base_net seed in
    let new_net = perturbed old_net 0.005 (seed * 7) in
    let eps =
      Cv_diffverify.Diffverify.max_output_delta ~old_net ~new_net box4
    in
    let naive =
      Cv_diffverify.Diffverify.naive_bound ~old_net ~new_net box4
    in
    let naive_max =
      Array.fold_left
        (fun acc iv ->
          Float.max acc
            (Float.max
               (Float.abs (Cv_interval.Interval.lo iv))
               (Float.abs (Cv_interval.Interval.hi iv))))
        0. naive
    in
    Alcotest.(check bool)
      (Printf.sprintf "tracked %.4f <= naive %.4f" eps naive_max)
      true (eps <= naive_max +. 1e-9)
  done

let test_delta_scales_with_drift () =
  let old_net = base_net 5 in
  let small = perturbed old_net 0.001 11 in
  let large = perturbed old_net 0.05 11 in
  let eps_small =
    Cv_diffverify.Diffverify.max_output_delta ~old_net ~new_net:small box4
  in
  let eps_large =
    Cv_diffverify.Diffverify.max_output_delta ~old_net ~new_net:large box4
  in
  Alcotest.(check bool) "monotone in drift" true (eps_small < eps_large)

let test_shape_mismatch_rejected () =
  let a = base_net 1 in
  let b =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 2) ~dims:[ 4; 6; 5; 1 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  try
    ignore (Cv_diffverify.Diffverify.analyze ~old_net:a ~new_net:b box4);
    Alcotest.fail "should reject"
  with Invalid_argument _ -> ()

let test_layer_records () =
  let old_net = base_net 3 in
  let new_net = perturbed old_net 0.01 5 in
  let layers = Cv_diffverify.Diffverify.analyze ~old_net ~new_net box4 in
  Alcotest.(check int) "one record per layer" 3 (Array.length layers);
  (* Old-box soundness per layer. *)
  let rng = rng () in
  for _ = 1 to 200 do
    let x = Cv_interval.Box.sample rng box4 in
    let trace = Cv_nn.Network.eval_trace old_net x in
    Array.iteri
      (fun i r ->
        Alcotest.(check bool) "old box sound" true
          (Cv_interval.Box.mem_tol ~tol:1e-6 trace.(i)
             r.Cv_diffverify.Diffverify.old_box))
      layers
  done

(* prop-diff route: small drift on an unchanged domain with a roomy
   D_out transfers; and whenever it says Safe, sampling agrees. *)
let test_prop_diff_route () =
  let net = base_net 21 in
  let chain =
    Cv_domains.Analyzer.abstractions ~widen:0.02 Cv_domains.Analyzer.Symint net
      box4
  in
  let s_n = chain.(Array.length chain - 1) in
  let dout = Cv_interval.Box.expand 0.3 s_n in
  let prop = Cv_verify.Property.make ~din:box4 ~dout in
  let artifact =
    Cv_artifacts.Artifacts.make ~state_abstractions:chain
      ~lipschitz:
        [ ("Linf", Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net) ]
      ~property:prop ~net ~solver:"chain" ~solve_seconds:1. ()
  in
  let net' = perturbed net 0.002 31 in
  let p =
    Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din:box4
  in
  let a = Cv_core.Diff_reuse.prop_diff p in
  Alcotest.(check bool) ("prop-diff: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a);
  let rng = rng () in
  for _ = 1 to 1000 do
    let x = Cv_interval.Box.sample rng box4 in
    Alcotest.(check bool) "target safe" true
      (Cv_interval.Box.mem_tol ~tol:1e-7 (Cv_nn.Network.eval net' x) dout)
  done

let test_prop_diff_rejects_big_drift () =
  let net = base_net 23 in
  let chain =
    Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Symint net box4
  in
  let dout = chain.(Array.length chain - 1) in
  let prop = Cv_verify.Property.make ~din:box4 ~dout in
  let artifact =
    Cv_artifacts.Artifacts.make ~state_abstractions:chain ~property:prop ~net
      ~solver:"chain" ~solve_seconds:1. ()
  in
  let net' = perturbed net 0.5 37 in
  let p =
    Cv_core.Problem.svbtv ~old_net:net ~new_net:net' ~artifact ~new_din:box4
  in
  let a = Cv_core.Diff_reuse.prop_diff p in
  Alcotest.(check bool) "big drift inconclusive" true
    (not (Cv_core.Report.is_safe a))

let diff_soundness_prop =
  QCheck.Test.make ~name:"differential bound dominates random pairs" ~count:30
    QCheck.(pair (int_range 1 200) (float_range 0.0 0.05))
    (fun (seed, sigma) ->
      let old_net = base_net seed in
      let new_net = perturbed old_net sigma (seed + 1) in
      let eps =
        Cv_diffverify.Diffverify.max_output_delta ~old_net ~new_net box4
      in
      let rng = Cv_util.Rng.create (seed + 2) in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Cv_interval.Box.sample rng box4 in
        let d =
          Float.abs
            ((Cv_nn.Network.eval new_net x).(0)
            -. (Cv_nn.Network.eval old_net x).(0))
        in
        if d > eps +. 1e-9 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "cv_diffverify"
    [ ( "analysis",
        [ Alcotest.test_case "soundness" `Quick test_soundness;
          Alcotest.test_case "zero for identical" `Quick test_zero_for_identical;
          Alcotest.test_case "tighter than naive" `Quick test_tighter_than_naive;
          Alcotest.test_case "scales with drift" `Quick
            test_delta_scales_with_drift;
          Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch_rejected;
          Alcotest.test_case "layer records" `Quick test_layer_records;
          QCheck_alcotest.to_alcotest diff_soundness_prop ] );
      ( "prop-diff",
        [ Alcotest.test_case "route fires" `Quick test_prop_diff_route;
          Alcotest.test_case "rejects big drift" `Quick
            test_prop_diff_rejects_big_drift ] ) ]
