(* Tests for Cv_domains: soundness of every abstract transformer,
   precision relations, and the inductive-chain property of the
   analyzer. *)

let rng () = Cv_util.Rng.create 2718

let random_net ?(seed = 5) ~dims () =
  Cv_nn.Network.random ~rng:(Cv_util.Rng.create seed) ~dims
    ~act:Cv_nn.Activation.Relu ()

let all_domains =
  [ Cv_domains.Analyzer.Box;
    Cv_domains.Analyzer.Symint;
    Cv_domains.Analyzer.Zonotope;
    Cv_domains.Analyzer.Deeppoly;
    Cv_domains.Analyzer.Star ]

(* Soundness: concrete outputs always inside the abstract reach. *)
let soundness_test kind () =
  let rng = rng () in
  for seed = 1 to 5 do
    let net = random_net ~seed ~dims:[ 3; 7; 6; 2 ] () in
    let din = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
    let reach = Cv_domains.Analyzer.output_box kind net din in
    for _ = 1 to 500 do
      let x = Cv_interval.Box.sample rng din in
      let y = Cv_nn.Network.eval net x in
      Alcotest.(check bool)
        (Printf.sprintf "%s sound (seed %d)"
           (Cv_domains.Analyzer.domain_name kind)
           seed)
        true
        (Cv_interval.Box.mem_tol ~tol:1e-6 y reach)
    done
  done

(* Soundness on other activations via the generic transformers. *)
let soundness_activations_test kind () =
  let rng = rng () in
  List.iter
    (fun act ->
      let net =
        Cv_nn.Network.random ~rng:(Cv_util.Rng.create 11) ~dims:[ 2; 5; 1 ] ~act ()
      in
      let din = Cv_interval.Box.uniform 2 ~lo:(-2.) ~hi:2. in
      let reach = Cv_domains.Analyzer.output_box kind net din in
      for _ = 1 to 300 do
        let x = Cv_interval.Box.sample rng din in
        Alcotest.(check bool)
          (Cv_nn.Activation.to_string act)
          true
          (Cv_interval.Box.mem_tol ~tol:1e-6 (Cv_nn.Network.eval net x) reach)
      done)
    [ Cv_nn.Activation.Leaky_relu 0.2;
      Cv_nn.Activation.Sigmoid;
      Cv_nn.Activation.Tanh ]

(* Paper Figure 2: box analysis on the worked example. *)
let fig2_net () =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

let test_fig2_box_bounds () =
  let net = fig2_net () in
  let reach kind box = Cv_domains.Analyzer.output_box kind net box in
  let original = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let enlarged = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1 in
  let r0 = reach Cv_domains.Analyzer.Box original in
  Alcotest.(check (float 1e-9)) "n4 hi = 12 on [-1,1]^2" 12.
    (Cv_interval.Interval.hi (Cv_interval.Box.get r0 0));
  let r1 = reach Cv_domains.Analyzer.Box enlarged in
  Alcotest.(check (float 1e-9)) "n4 hi = 12.4 enlarged" 12.4
    (Cv_interval.Interval.hi (Cv_interval.Box.get r1 0))

(* Precision: symbolic intervals are never looser than box (their ReLU
   relaxation keeps lower bounds at >= 0 and chords below the box upper
   bound). Zonotope and DeepPoly are usually tighter but their ReLU
   relaxations can dip below zero, so we only require them to stay
   within a constant factor of box, and to contain the exact range. *)
let test_precision_ordering () =
  for seed = 1 to 5 do
    let net = random_net ~seed ~dims:[ 3; 8; 6; 1 ] () in
    let din = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
    let width kind =
      Cv_interval.Box.total_width (Cv_domains.Analyzer.output_box kind net din)
    in
    let box_w = width Cv_domains.Analyzer.Box in
    Alcotest.(check bool) "symint <= box" true
      (width Cv_domains.Analyzer.Symint <= box_w +. 1e-9);
    Alcotest.(check bool) "zonotope within 2x box" true
      (width Cv_domains.Analyzer.Zonotope <= (2. *. box_w) +. 1e-9);
    Alcotest.(check bool) "deeppoly within 2x box" true
      (width Cv_domains.Analyzer.Deeppoly <= (2. *. box_w) +. 1e-9);
    (* star's LP-backed bounds should beat symint *)
    Alcotest.(check bool) "star <= symint" true
      (width Cv_domains.Analyzer.Star
      <= width Cv_domains.Analyzer.Symint +. 1e-6)
  done

(* Inductive chain: S_{i+1} contains the layer image of (samples of)
   S_i. This is the property Propositions 1-5 lean on. *)
let chain_induction_test kind () =
  let rng = rng () in
  let net = random_net ~seed:3 ~dims:[ 3; 6; 5; 2 ] () in
  let din = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
  let s = Cv_domains.Analyzer.abstractions kind net din in
  for i = 0 to Cv_nn.Network.num_layers net - 1 do
    let source = if i = 0 then din else s.(i - 1) in
    let layer = Cv_nn.Network.layer net i in
    for _ = 1 to 300 do
      let x = Cv_interval.Box.sample rng source in
      Alcotest.(check bool)
        (Printf.sprintf "layer %d induction" i)
        true
        (Cv_interval.Box.mem_tol ~tol:1e-6 (Cv_nn.Layer.eval layer x) s.(i))
    done
  done

let test_widening_contains_plain () =
  let net = random_net ~seed:4 ~dims:[ 3; 6; 2 ] () in
  let din = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
  let plain = Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Symint net din in
  let wide =
    Cv_domains.Analyzer.abstractions ~widen:0.1 Cv_domains.Analyzer.Symint net din
  in
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "S_%d widened contains plain" i)
        true
        (Cv_interval.Box.subset s wide.(i)))
    plain

let test_verify_dispatch () =
  let net = fig2_net () in
  let din = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let dout_ok = Cv_interval.Box.of_bounds [| -13. |] [| 13. |] in
  let dout_tight = Cv_interval.Box.of_bounds [| -1. |] [| 7. |] in
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Cv_domains.Analyzer.domain_name kind ^ " proves loose")
        true
        (Cv_domains.Analyzer.verify kind net ~din ~dout:dout_ok))
    all_domains;
  (* The box domain cannot prove the tight property (reach [0,12]). *)
  Alcotest.(check bool) "box cannot prove tight" false
    (Cv_domains.Analyzer.verify Cv_domains.Analyzer.Box net ~din ~dout:dout_tight)

let test_domain_of_string () =
  List.iter
    (fun kind ->
      Alcotest.(check bool) "roundtrip" true
        (Cv_domains.Analyzer.domain_of_string
           (Cv_domains.Analyzer.domain_name kind)
        = kind))
    all_domains;
  try
    ignore (Cv_domains.Analyzer.domain_of_string "nope");
    Alcotest.fail "should reject"
  with Invalid_argument _ -> ()

(* through-variant is at least as tight as the re-launched chain. *)
let test_through_tighter () =
  let net = random_net ~seed:6 ~dims:[ 3; 8; 6; 1 ] () in
  let din = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
  let chain = Cv_domains.Analyzer.Symint_analysis.abstractions net din in
  let through = Cv_domains.Analyzer.Symint_analysis.abstractions_through net din in
  let n = Array.length chain in
  Alcotest.(check bool) "through final ⊆ chain final" true
    (Cv_interval.Box.subset_tol through.(n - 1) chain.(n - 1))

(* Zonotope generator growth stays bounded by unstable relus. *)
let test_zonotope_generator_growth () =
  let z0 = Cv_domains.Zonotope.of_box (Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1.) in
  Alcotest.(check int) "initial generators" 3
    (Cv_domains.Zonotope.num_generators z0);
  let l =
    Cv_nn.Layer.random ~rng:(Cv_util.Rng.create 8) ~in_dim:3 ~out_dim:5
      Cv_nn.Activation.Relu
  in
  let z1 = Cv_domains.Zonotope.apply_layer l z0 in
  Alcotest.(check bool) "generators grow by at most out_dim" true
    (Cv_domains.Zonotope.num_generators z1 <= 3 + 5)


(* Star-set specifics: predicate growth and LP-backed tightening. *)
let test_star_predicates_grow_with_unstable () =
  let net = random_net ~seed:8 ~dims:[ 3; 6; 1 ] () in
  let din = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
  let s0 = Cv_domains.Starset.of_box din in
  Alcotest.(check int) "initial predicates" 3
    (Cv_domains.Starset.num_predicates s0);
  let s1 = Cv_domains.Starset.apply_layer (Cv_nn.Network.layer net 0) s0 in
  Alcotest.(check bool) "at most one new predicate per neuron" true
    (Cv_domains.Starset.num_predicates s1 <= 3 + 6)

let test_star_affine_exact () =
  (* A purely linear network: star concretisation equals the exact
     affine image bounds. *)
  let w = Cv_linalg.Mat.of_rows [ [| 2.; -1. |]; [| 1.; 1. |] ] in
  let net =
    Cv_nn.Network.make
      [| Cv_nn.Layer.make w [| 0.5; 0. |] Cv_nn.Activation.Identity |]
  in
  let din = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let reach = Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Star net din in
  Alcotest.(check (float 1e-6)) "dim0 hi" 3.5
    (Cv_interval.Interval.hi (Cv_interval.Box.get reach 0));
  Alcotest.(check (float 1e-6)) "dim0 lo" (-2.5)
    (Cv_interval.Interval.lo (Cv_interval.Box.get reach 0));
  Alcotest.(check (float 1e-6)) "dim1 hi" 2.
    (Cv_interval.Interval.hi (Cv_interval.Box.get reach 1))

let test_star_beats_symint_on_fig2 () =
  let net = fig2_net () in
  let din = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let star_w =
    Cv_interval.Box.total_width
      (Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Star net din)
  in
  let sym_w =
    Cv_interval.Box.total_width
      (Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint net din)
  in
  Alcotest.(check bool)
    (Printf.sprintf "star %.3f <= symint %.3f" star_w sym_w)
    true (star_w <= sym_w +. 1e-6)


let test_zonotope_order_reduction_sound () =
  let rng = rng () in
  let net = random_net ~seed:14 ~dims:[ 3; 10; 8; 2 ] () in
  let din = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
  (* Push a zonotope through and reduce aggressively. *)
  let z =
    Array.fold_left
      (fun acc l ->
        Cv_domains.Zonotope.reduce_order ~max_generators:6
          (Cv_domains.Zonotope.apply_layer l acc))
      (Cv_domains.Zonotope.of_box din)
      (Cv_nn.Network.layers net)
  in
  Alcotest.(check bool) "budget respected" true
    (Cv_domains.Zonotope.num_generators z <= 6 + 2);
  let reach = Cv_domains.Zonotope.to_box z in
  (* Reduction is sound: concrete outputs stay inside. *)
  for _ = 1 to 1000 do
    let x = Cv_interval.Box.sample rng din in
    Alcotest.(check bool) "sound after reduction" true
      (Cv_interval.Box.mem_tol ~tol:1e-6 (Cv_nn.Network.eval net x) reach)
  done;
  (* And contains the unreduced zonotope's box. *)
  let exact_z =
    Array.fold_left
      (fun acc l -> Cv_domains.Zonotope.apply_layer l acc)
      (Cv_domains.Zonotope.of_box din)
      (Cv_nn.Network.layers net)
  in
  Alcotest.(check bool) "contains unreduced" true
    (Cv_interval.Box.subset_tol (Cv_domains.Zonotope.to_box exact_z) reach)

let test_zonotope_reduction_noop_under_budget () =
  let z = Cv_domains.Zonotope.of_box (Cv_interval.Box.uniform 3 ~lo:0. ~hi:1.) in
  let z' = Cv_domains.Zonotope.reduce_order ~max_generators:10 z in
  Alcotest.(check int) "unchanged" (Cv_domains.Zonotope.num_generators z)
    (Cv_domains.Zonotope.num_generators z')

let transformer_pre_activation_exact_prop =
  QCheck.Test.make ~name:"pre_activation_box contains sampled pre-acts"
    ~count:100
    QCheck.(list_of_size (Gen.return 3) (float_range (-1.) 1.))
    (fun xs ->
      let l =
        Cv_nn.Layer.random ~rng:(Cv_util.Rng.create 12) ~in_dim:3 ~out_dim:4
          Cv_nn.Activation.Relu
      in
      let box = Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1. in
      let pre_box = Cv_domains.Transformer.pre_activation_box l box in
      let x = Array.of_list xs in
      Cv_interval.Box.mem_tol ~tol:1e-9 (Cv_nn.Layer.pre_activation l x) pre_box)

let () =
  let soundness_cases =
    List.map
      (fun kind ->
        Alcotest.test_case
          (Cv_domains.Analyzer.domain_name kind ^ " soundness")
          `Quick (soundness_test kind))
      all_domains
  in
  let activation_cases =
    List.map
      (fun kind ->
        Alcotest.test_case
          (Cv_domains.Analyzer.domain_name kind ^ " other activations")
          `Quick
          (soundness_activations_test kind))
      all_domains
  in
  let chain_cases =
    List.map
      (fun kind ->
        Alcotest.test_case
          (Cv_domains.Analyzer.domain_name kind ^ " chain induction")
          `Quick (chain_induction_test kind))
      all_domains
  in
  Alcotest.run "cv_domains"
    [ ("soundness", soundness_cases);
      ("soundness-activations", activation_cases);
      ( "paper-fig2",
        [ Alcotest.test_case "box bounds 12 / 12.4" `Quick test_fig2_box_bounds ] );
      ( "precision",
        [ Alcotest.test_case "relational <= box" `Quick test_precision_ordering;
          Alcotest.test_case "through tighter than chain" `Quick
            test_through_tighter ] );
      ("chain-induction", chain_cases);
      ( "analyzer",
        [ Alcotest.test_case "widening contains plain" `Quick
            test_widening_contains_plain;
          Alcotest.test_case "verify dispatch" `Quick test_verify_dispatch;
          Alcotest.test_case "domain_of_string" `Quick test_domain_of_string;
          Alcotest.test_case "zonotope generators" `Quick
            test_zonotope_generator_growth;
          Alcotest.test_case "zonotope order reduction" `Quick
            test_zonotope_order_reduction_sound;
          Alcotest.test_case "zonotope reduction noop" `Quick
            test_zonotope_reduction_noop_under_budget;
          Alcotest.test_case "star predicates" `Quick
            test_star_predicates_grow_with_unstable;
          Alcotest.test_case "star affine exact" `Quick test_star_affine_exact;
          Alcotest.test_case "star beats symint (fig2)" `Quick
            test_star_beats_symint_on_fig2;
          QCheck_alcotest.to_alcotest transformer_pre_activation_exact_prop ] ) ]
