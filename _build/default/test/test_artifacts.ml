(* Tests for Cv_artifacts: fingerprints, bundle construction,
   persistence round-trips. *)

let net () =
  Cv_nn.Network.random ~rng:(Cv_util.Rng.create 42) ~dims:[ 3; 5; 4; 1 ]
    ~act:Cv_nn.Activation.Relu ()

let prop () =
  Cv_verify.Property.make
    ~din:(Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:1.)
    ~dout:(Cv_interval.Box.of_bounds [| -5. |] [| 5. |])

let make_artifact ?(with_abs = true) () =
  let n = net () in
  let s =
    if with_abs then
      Some
        (Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Symint n
           (prop ()).Cv_verify.Property.din)
    else None
  in
  Cv_artifacts.Artifacts.make ?state_abstractions:s
    ~lipschitz:[ ("Linf", 12.5); ("L2", 8.25) ]
    ~property:(prop ()) ~net:n ~solver:"milp" ~solve_seconds:1.5 ()

let test_fingerprint_stability () =
  let n = net () in
  Alcotest.(check string) "deterministic"
    (Cv_artifacts.Artifacts.fingerprint n)
    (Cv_artifacts.Artifacts.fingerprint n);
  let perturbed =
    Cv_nn.Network.map_layers
      (Cv_nn.Layer.perturb ~rng:(Cv_util.Rng.create 1) ~sigma:0.001)
      n
  in
  Alcotest.(check bool) "sensitive to parameters" true
    (Cv_artifacts.Artifacts.fingerprint n
    <> Cv_artifacts.Artifacts.fingerprint perturbed)

let test_matches () =
  let a = make_artifact () in
  Alcotest.(check bool) "matches source" true
    (Cv_artifacts.Artifacts.matches a (net ()));
  let other =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 7) ~dims:[ 3; 5; 4; 1 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  Alcotest.(check bool) "rejects other" false
    (Cv_artifacts.Artifacts.matches a other)

let test_lipschitz_access () =
  let a = make_artifact () in
  Alcotest.(check (option (float 1e-12))) "linf" (Some 12.5)
    (Cv_artifacts.Artifacts.lipschitz_for a "Linf");
  Alcotest.(check (option (float 1e-12))) "missing" None
    (Cv_artifacts.Artifacts.lipschitz_for a "L7");
  let a' = Cv_artifacts.Artifacts.with_lipschitz a "Linf" 10. in
  Alcotest.(check (option (float 1e-12))) "updated" (Some 10.)
    (Cv_artifacts.Artifacts.lipschitz_for a' "Linf")

let test_final_abstraction () =
  let a = make_artifact () in
  (match Cv_artifacts.Artifacts.final_abstraction a with
  | Some b -> Alcotest.(check int) "output dim" 1 (Cv_interval.Box.dim b)
  | None -> Alcotest.fail "expected S_n");
  let a0 = make_artifact ~with_abs:false () in
  Alcotest.(check bool) "none without chain" true
    (Cv_artifacts.Artifacts.final_abstraction a0 = None)

let artifact_equal a b =
  let open Cv_artifacts.Artifacts in
  a.network_fingerprint = b.network_fingerprint
  && a.solver = b.solver
  && Cv_util.Float_utils.approx_eq a.solve_seconds b.solve_seconds
  && List.length a.lipschitz = List.length b.lipschitz
  && (match (a.state_abstractions, b.state_abstractions) with
     | None, None -> true
     | Some x, Some y ->
       Array.length x = Array.length y
       && Array.for_all2 (fun p q -> Cv_interval.Box.equal p q) x y
     | _ -> false)

let test_json_roundtrip () =
  let a = make_artifact () in
  let a' = Cv_artifacts.Artifacts.of_json (Cv_artifacts.Artifacts.to_json a) in
  Alcotest.(check bool) "roundtrip" true (artifact_equal a a')

let test_json_roundtrip_no_abs () =
  let a = make_artifact ~with_abs:false () in
  let a' = Cv_artifacts.Artifacts.of_json (Cv_artifacts.Artifacts.to_json a) in
  Alcotest.(check bool) "roundtrip" true (artifact_equal a a')

let test_file_roundtrip () =
  let a = make_artifact () in
  let path = Filename.temp_file "cv_artifact" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cv_artifacts.Artifacts.save path a;
      let a' = Cv_artifacts.Artifacts.load path in
      Alcotest.(check bool) "file roundtrip" true (artifact_equal a a'))

let test_rejects_wrong_format () =
  try
    ignore (Cv_artifacts.Artifacts.of_json (Cv_util.Json.parse "{\"a\": 1}"));
    Alcotest.fail "should reject"
  with Cv_util.Json.Error _ -> ()

let () =
  Alcotest.run "cv_artifacts"
    [ ( "fingerprint",
        [ Alcotest.test_case "stability" `Quick test_fingerprint_stability;
          Alcotest.test_case "matches" `Quick test_matches ] );
      ( "bundle",
        [ Alcotest.test_case "lipschitz access" `Quick test_lipschitz_access;
          Alcotest.test_case "final abstraction" `Quick test_final_abstraction ] );
      ( "persistence",
        [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "json roundtrip (no chain)" `Quick
            test_json_roundtrip_no_abs;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "rejects wrong format" `Quick
            test_rejects_wrong_format ] ) ]
