(* Tests for Cv_lp: the simplex solver and the LP model builder. *)

let check_float = Alcotest.(check (float 1e-6))

let solve_max p terms = Cv_lp.Lp.maximize_linear p terms

(* ------------------------------------------------------------------ *)
(* Basic LPs                                                           *)
(* ------------------------------------------------------------------ *)

let test_textbook_max () =
  (* max x+y s.t. x+2y<=4, 3x+y<=6, x,y>=0: optimum 2.8 at (1.6, 1.2) *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. () in
  let y = Cv_lp.Lp.add_var p ~lo:0. () in
  Cv_lp.Lp.add_constraint p [ (1., x); (2., y) ] Cv_lp.Lp.Le 4.;
  Cv_lp.Lp.add_constraint p [ (3., x); (1., y) ] Cv_lp.Lp.Le 6.;
  match solve_max p [ (1., x); (1., y) ] with
  | Cv_lp.Lp.Optimal s ->
    check_float "objective" 2.8 s.Cv_lp.Lp.objective;
    check_float "x" 1.6 s.Cv_lp.Lp.values.(x);
    check_float "y" 1.2 s.Cv_lp.Lp.values.(y)
  | _ -> Alcotest.fail "expected optimal"

let test_minimize () =
  (* min 2x + 3y s.t. x + y >= 4, x,y >= 0: optimum 8 at (4, 0) *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. () in
  let y = Cv_lp.Lp.add_var p ~lo:0. () in
  Cv_lp.Lp.add_constraint p [ (1., x); (1., y) ] Cv_lp.Lp.Ge 4.;
  match Cv_lp.Lp.minimize_linear p [ (2., x); (3., y) ] with
  | Cv_lp.Lp.Optimal s ->
    check_float "objective" 8. s.Cv_lp.Lp.objective;
    check_float "x" 4. s.Cv_lp.Lp.values.(x)
  | _ -> Alcotest.fail "expected optimal"

let test_equality_constraint () =
  (* max x s.t. x + y = 3, y >= 1, x >= 0: optimum 2 *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. () in
  let y = Cv_lp.Lp.add_var p ~lo:1. () in
  Cv_lp.Lp.add_constraint p [ (1., x); (1., y) ] Cv_lp.Lp.Eq 3.;
  match solve_max p [ (1., x) ] with
  | Cv_lp.Lp.Optimal s -> check_float "objective" 2. s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_infeasible () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:1. () in
  Cv_lp.Lp.add_constraint p [ (1., x) ] Cv_lp.Lp.Ge 2.;
  match solve_max p [ (1., x) ] with
  | Cv_lp.Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. () in
  match solve_max p [ (1., x) ] with
  | Cv_lp.Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

(* ------------------------------------------------------------------ *)
(* Bounds handling                                                     *)
(* ------------------------------------------------------------------ *)

let test_negative_lower_bounds () =
  (* max x + y, x ∈ [-3, -1], y ∈ [-2, 5]: optimum -1 + 5 = 4 *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:(-3.) ~hi:(-1.) () in
  let y = Cv_lp.Lp.add_var p ~lo:(-2.) ~hi:5. () in
  match solve_max p [ (1., x); (1., y) ] with
  | Cv_lp.Lp.Optimal s ->
    check_float "objective" 4. s.Cv_lp.Lp.objective;
    check_float "x" (-1.) s.Cv_lp.Lp.values.(x)
  | _ -> Alcotest.fail "expected optimal"

let test_free_variable () =
  (* min x s.t. x >= -7 via constraint (x itself free): optimum -7 *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p () in
  Cv_lp.Lp.add_constraint p [ (1., x) ] Cv_lp.Lp.Ge (-7.);
  match Cv_lp.Lp.minimize_linear p [ (1., x) ] with
  | Cv_lp.Lp.Optimal s -> check_float "objective" (-7.) s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_upper_bound_only_variable () =
  (* max x, x <= 3 (no lower bound): optimum 3 *)
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~hi:3. () in
  match solve_max p [ (1., x) ] with
  | Cv_lp.Lp.Optimal s -> check_float "objective" 3. s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_fixed_variable () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:2. ~hi:2. () in
  let y = Cv_lp.Lp.add_var p ~lo:0. ~hi:1. () in
  Cv_lp.Lp.add_constraint p [ (1., x); (1., y) ] Cv_lp.Lp.Le 2.5;
  match solve_max p [ (1., x); (1., y) ] with
  | Cv_lp.Lp.Optimal s ->
    check_float "objective" 2.5 s.Cv_lp.Lp.objective;
    check_float "x pinned" 2. s.Cv_lp.Lp.values.(x)
  | _ -> Alcotest.fail "expected optimal"

let test_set_bounds_and_copy () =
  let p = Cv_lp.Lp.create () in
  let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:10. () in
  let q = Cv_lp.Lp.copy p in
  Cv_lp.Lp.set_bounds q x ~lo:1. ~hi:1.;
  Alcotest.(check (pair (float 1e-12) (float 1e-12)))
    "original untouched" (0., 10.) (Cv_lp.Lp.bounds p x);
  Alcotest.(check (pair (float 1e-12) (float 1e-12)))
    "copy updated" (1., 1.) (Cv_lp.Lp.bounds q x);
  match solve_max q [ (1., x) ] with
  | Cv_lp.Lp.Optimal s -> check_float "pinned optimum" 1. s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_bad_constraint_var () =
  let p = Cv_lp.Lp.create () in
  let _x = Cv_lp.Lp.add_var p ~lo:0. () in
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Lp.add_constraint: unknown var") (fun () ->
      Cv_lp.Lp.add_constraint p [ (1., 5) ] Cv_lp.Lp.Le 1.)

(* ------------------------------------------------------------------ *)
(* Randomized validation against brute force on box-constrained LPs    *)
(* ------------------------------------------------------------------ *)

(* For an LP with only variable bounds (no rows), the max of a linear
   objective is attained at the appropriate corner. *)
let lp_box_corner_prop =
  QCheck.Test.make ~name:"bounds-only LP optimum = corner value" ~count:100
    QCheck.(list_of_size (Gen.return 4) (pair (float_range (-3.) 3.)
                                            (pair (float_range (-2.) 0.) (float_range 0. 2.))))
    (fun spec ->
      let p = Cv_lp.Lp.create () in
      let vars =
        List.map (fun (_, (lo, hi)) -> Cv_lp.Lp.add_var p ~lo ~hi ()) spec
      in
      let terms = List.map2 (fun (c, _) v -> (c, v)) spec vars in
      let expect =
        List.fold_left
          (fun acc (c, (lo, hi)) -> acc +. if c >= 0. then c *. hi else c *. lo)
          0. spec
      in
      match Cv_lp.Lp.maximize_linear p terms with
      | Cv_lp.Lp.Optimal s -> Float.abs (s.Cv_lp.Lp.objective -. expect) < 1e-6
      | _ -> false)

(* Feasibility of the returned point. *)
let lp_solution_feasible_prop =
  QCheck.Test.make ~name:"returned point satisfies all constraints" ~count:100
    QCheck.(pair (list_of_size (Gen.return 6) (float_range (-2.) 2.))
              (list_of_size (Gen.return 3) (float_range 0.5 4.)))
    (fun (coefs, rhss) ->
      let p = Cv_lp.Lp.create () in
      let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:5. () in
      let y = Cv_lp.Lp.add_var p ~lo:(-5.) ~hi:5. () in
      let rows =
        List.mapi
          (fun i rhs ->
            let a = List.nth coefs (2 * i) and b = List.nth coefs ((2 * i) + 1) in
            (a, b, rhs))
          rhss
      in
      List.iter
        (fun (a, b, rhs) ->
          Cv_lp.Lp.add_constraint p [ (a, x); (b, y) ] Cv_lp.Lp.Le rhs)
        rows;
      match Cv_lp.Lp.maximize_linear p [ (1., x); (1., y) ] with
      | Cv_lp.Lp.Optimal s ->
        let vx = s.Cv_lp.Lp.values.(x) and vy = s.Cv_lp.Lp.values.(y) in
        vx >= -1e-7 && vx <= 5. +. 1e-7 && vy >= -5. -. 1e-7 && vy <= 5. +. 1e-7
        && List.for_all
             (fun (a, b, rhs) -> (a *. vx) +. (b *. vy) <= rhs +. 1e-6)
             rows
      | Cv_lp.Lp.Infeasible -> false (* box origin... x=0,y=0 may violate? *)
      | Cv_lp.Lp.Unbounded -> false
      | exception _ -> false)


(* Exact validation on random 2-variable LPs: the optimum of a bounded
   feasible LP lies at a vertex of the feasible polygon; enumerate all
   candidate vertices (pairwise constraint/bound intersections), filter
   by feasibility, and compare. *)
let lp_vertex_enumeration_prop =
  QCheck.Test.make ~name:"2-var LP matches vertex enumeration" ~count:80
    QCheck.(pair (list_of_size (Gen.return 9) (float_range (-2.) 2.))
              (pair (float_range 0.5 3.) (float_range 0.5 3.)))
    (fun (coefs, (cx, cy)) ->
      (* Three <= constraints a x + b y <= c over the box [0,2]^2. *)
      let cons =
        List.init 3 (fun i ->
            ( List.nth coefs (3 * i),
              List.nth coefs ((3 * i) + 1),
              (* keep rhs >= 0 so the origin stays feasible *)
              Float.abs (List.nth coefs ((3 * i) + 2)) ))
      in
      let feasible (x, y) =
        x >= -1e-9 && x <= 2. +. 1e-9 && y >= -1e-9 && y <= 2. +. 1e-9
        && List.for_all (fun (a, b, c) -> (a *. x) +. (b *. y) <= c +. 1e-7) cons
      in
      (* Candidate vertices: intersections of all boundary pairs. *)
      let lines =
        (* constraint lines plus the four box edges *)
        List.map (fun (a, b, c) -> (a, b, c)) cons
        @ [ (1., 0., 0.); (1., 0., 2.); (0., 1., 0.); (0., 1., 2.) ]
      in
      let candidates = ref [ (0., 0.) ] in
      List.iteri
        (fun i (a1, b1, c1) ->
          List.iteri
            (fun j (a2, b2, c2) ->
              if j > i then begin
                let det = (a1 *. b2) -. (a2 *. b1) in
                if Float.abs det > 1e-9 then
                  candidates :=
                    ( ((c1 *. b2) -. (c2 *. b1)) /. det,
                      ((a1 *. c2) -. (a2 *. c1)) /. det )
                    :: !candidates
              end)
            lines)
        lines;
      let best =
        List.fold_left
          (fun acc (x, y) ->
            if feasible (x, y) then Float.max acc ((cx *. x) +. (cy *. y))
            else acc)
          Float.neg_infinity !candidates
      in
      let p = Cv_lp.Lp.create () in
      let x = Cv_lp.Lp.add_var p ~lo:0. ~hi:2. () in
      let y = Cv_lp.Lp.add_var p ~lo:0. ~hi:2. () in
      List.iter
        (fun (a, b, c) ->
          Cv_lp.Lp.add_constraint p [ (a, x); (b, y) ] Cv_lp.Lp.Le c)
        cons;
      match Cv_lp.Lp.maximize_linear p [ (cx, x); (cy, y) ] with
      | Cv_lp.Lp.Optimal s -> Float.abs (s.Cv_lp.Lp.objective -. best) < 1e-5
      | _ -> false)

(* Degenerate LP that historically cycles without Bland's rule. *)
let test_degenerate_no_cycle () =
  (* Beale's example of cycling. *)
  let p = Cv_lp.Lp.create () in
  let x1 = Cv_lp.Lp.add_var p ~lo:0. () in
  let x2 = Cv_lp.Lp.add_var p ~lo:0. () in
  let x3 = Cv_lp.Lp.add_var p ~lo:0. () in
  let x4 = Cv_lp.Lp.add_var p ~lo:0. () in
  Cv_lp.Lp.add_constraint p
    [ (0.25, x1); (-8., x2); (-1., x3); (9., x4) ]
    Cv_lp.Lp.Le 0.;
  Cv_lp.Lp.add_constraint p
    [ (0.5, x1); (-12., x2); (-0.5, x3); (3., x4) ]
    Cv_lp.Lp.Le 0.;
  Cv_lp.Lp.add_constraint p [ (1., x3) ] Cv_lp.Lp.Le 1.;
  match
    Cv_lp.Lp.maximize_linear p
      [ (0.75, x1); (-20., x2); (0.5, x3); (-6., x4) ]
  with
  | Cv_lp.Lp.Optimal s -> check_float "Beale optimum" 1.25 s.Cv_lp.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

let () =
  Alcotest.run "cv_lp"
    [ ( "basic",
        [ Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "equality" `Quick test_equality_constraint;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "degenerate (Beale)" `Quick
            test_degenerate_no_cycle ] );
      ( "bounds",
        [ Alcotest.test_case "negative lower bounds" `Quick
            test_negative_lower_bounds;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "upper-bound-only" `Quick
            test_upper_bound_only_variable;
          Alcotest.test_case "fixed variable" `Quick test_fixed_variable;
          Alcotest.test_case "set_bounds/copy" `Quick test_set_bounds_and_copy;
          Alcotest.test_case "constraint validation" `Quick
            test_bad_constraint_var ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest lp_box_corner_prop;
          QCheck_alcotest.to_alcotest lp_solution_feasible_prop;
          QCheck_alcotest.to_alcotest lp_vertex_enumeration_prop ] ) ]
