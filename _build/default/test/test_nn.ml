(* Tests for Cv_nn: activations, layers, networks, training,
   serialization. *)

let check_float = Alcotest.(check (float 1e-9))

let rng () = Cv_util.Rng.create 123

(* ------------------------------------------------------------------ *)
(* Activation                                                          *)
(* ------------------------------------------------------------------ *)

let test_activation_apply () =
  let open Cv_nn.Activation in
  check_float "relu+" 2. (apply Relu 2.);
  check_float "relu-" 0. (apply Relu (-2.));
  check_float "leaky-" (-0.2) (apply (Leaky_relu 0.1) (-2.));
  check_float "identity" 5. (apply Identity 5.);
  check_float "sigmoid 0" 0.5 (apply Sigmoid 0.);
  check_float "tanh 0" 0. (apply Tanh 0.)

let test_activation_derivative () =
  let open Cv_nn.Activation in
  check_float "relu'+" 1. (derivative Relu 2.);
  check_float "relu'-" 0. (derivative Relu (-2.));
  check_float "sigmoid' 0" 0.25 (derivative Sigmoid 0.);
  check_float "tanh' 0" 1. (derivative Tanh 0.)

let test_activation_lipschitz () =
  let open Cv_nn.Activation in
  check_float "relu" 1. (lipschitz Relu);
  check_float "sigmoid" 0.25 (lipschitz Sigmoid);
  check_float "leaky" 1. (lipschitz (Leaky_relu 0.1))

let activation_derivative_bound_prop =
  QCheck.Test.make ~name:"derivative bounded by lipschitz" ~count:500
    QCheck.(pair (float_range (-5.) 5.) (int_range 0 3))
    (fun (x, which) ->
      let open Cv_nn.Activation in
      let act =
        match which with
        | 0 -> Relu
        | 1 -> Leaky_relu 0.3
        | 2 -> Sigmoid
        | _ -> Tanh
      in
      Float.abs (derivative act x) <= lipschitz act +. 1e-9)

let test_activation_interval_image () =
  let open Cv_nn.Activation in
  let img = interval Sigmoid (Cv_interval.Interval.make (-1.) 1.) in
  Alcotest.(check bool) "sigmoid image" true
    (Cv_util.Float_utils.approx_eq ~tol:1e-9 (Cv_interval.Interval.lo img)
       (apply Sigmoid (-1.))
    && Cv_util.Float_utils.approx_eq ~tol:1e-9 (Cv_interval.Interval.hi img)
         (apply Sigmoid 1.))

let test_activation_json () =
  let open Cv_nn.Activation in
  List.iter
    (fun a -> Alcotest.(check bool) (to_string a) true (of_json (to_json a) = a))
    [ Relu; Leaky_relu 0.2; Sigmoid; Tanh; Identity ]

(* ------------------------------------------------------------------ *)
(* Layer / Network                                                     *)
(* ------------------------------------------------------------------ *)

let simple_layer () =
  Cv_nn.Layer.make
    (Cv_linalg.Mat.of_rows [ [| 1.; -1. |]; [| 2.; 0. |] ])
    [| 0.5; -1. |] Cv_nn.Activation.Relu

let test_layer_eval () =
  let l = simple_layer () in
  Alcotest.(check (array (float 1e-9))) "pre" [| 0.5; 1. |]
    (Cv_nn.Layer.pre_activation l [| 1.; 1. |]);
  Alcotest.(check (array (float 1e-9))) "eval relu" [| 0.5; 1. |]
    (Cv_nn.Layer.eval l [| 1.; 1. |]);
  Alcotest.(check (array (float 1e-9))) "negative clipped" [| 0.; 0. |]
    (Cv_nn.Layer.eval l [| -2.; 2. |]);
  Alcotest.(check int) "params" 6 (Cv_nn.Layer.num_params l)

let test_layer_bias_mismatch () =
  Alcotest.check_raises "bias"
    (Invalid_argument "Layer.make: bias dimension mismatch") (fun () ->
      ignore
        (Cv_nn.Layer.make
           (Cv_linalg.Mat.of_rows [ [| 1. |] ])
           [| 1.; 2. |] Cv_nn.Activation.Relu))

let small_net () =
  Cv_nn.Network.random ~rng:(rng ()) ~dims:[ 3; 5; 4; 2 ]
    ~act:Cv_nn.Activation.Relu ()

let test_network_shape () =
  let net = small_net () in
  Alcotest.(check int) "layers" 3 (Cv_nn.Network.num_layers net);
  Alcotest.(check int) "in" 3 (Cv_nn.Network.in_dim net);
  Alcotest.(check int) "out" 2 (Cv_nn.Network.out_dim net);
  Alcotest.(check (list int)) "dims" [ 3; 5; 4; 2 ] (Cv_nn.Network.layer_dims net);
  Alcotest.(check int) "neurons" 11 (Cv_nn.Network.num_neurons net);
  Alcotest.(check int) "params" (20 + 24 + 10) (Cv_nn.Network.num_params net)

let test_network_eval_composition () =
  let net = small_net () in
  let x = [| 0.3; -0.7; 1.1 |] in
  (* eval = fold of layer evals *)
  let manual =
    Array.fold_left
      (fun acc l -> Cv_nn.Layer.eval l acc)
      x (Cv_nn.Network.layers net)
  in
  Alcotest.(check (array (float 1e-12))) "composition" manual
    (Cv_nn.Network.eval net x);
  (* trace last element = output *)
  let trace = Cv_nn.Network.eval_trace net x in
  Alcotest.(check (array (float 1e-12))) "trace output" manual
    trace.(Array.length trace - 1)

let test_network_slices () =
  let net = small_net () in
  let x = [| 0.5; 0.5; -0.5 |] in
  let p = Cv_nn.Network.prefix net 2 in
  let s = Cv_nn.Network.suffix net 2 in
  Alcotest.(check (array (float 1e-12))) "prefix;suffix = whole"
    (Cv_nn.Network.eval net x)
    (Cv_nn.Network.eval s (Cv_nn.Network.eval p x));
  let sl = Cv_nn.Network.slice net ~from_:1 ~to_:2 in
  Alcotest.(check int) "slice layers" 1 (Cv_nn.Network.num_layers sl);
  let c = Cv_nn.Network.compose p s in
  Alcotest.(check (array (float 1e-12))) "compose" (Cv_nn.Network.eval net x)
    (Cv_nn.Network.eval c x)

let test_network_same_shape_dist () =
  let net = small_net () in
  Alcotest.(check bool) "same shape self" true
    (Cv_nn.Network.same_shape net net);
  check_float "self dist" 0. (Cv_nn.Network.param_dist_inf net net);
  let perturbed =
    Cv_nn.Network.map_layers
      (Cv_nn.Layer.perturb ~rng:(rng ()) ~sigma:0.01)
      net
  in
  Alcotest.(check bool) "dist positive" true
    (Cv_nn.Network.param_dist_inf net perturbed > 0.)

let test_network_validation () =
  let l1 =
    Cv_nn.Layer.make (Cv_linalg.Mat.zeros 3 2) (Array.make 3 0.)
      Cv_nn.Activation.Relu
  in
  let bad =
    Cv_nn.Layer.make (Cv_linalg.Mat.zeros 3 5) (Array.make 3 0.)
      Cv_nn.Activation.Relu
  in
  try
    ignore (Cv_nn.Network.make [| l1; bad |]);
    Alcotest.fail "should reject mismatched chain"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Train                                                               *)
(* ------------------------------------------------------------------ *)

let linear_dataset rng n =
  (* Learn y = 0.7 x1 - 0.3 x2 + 0.1 *)
  List.init n (fun _ ->
      let x = Cv_util.Rng.uniform_array rng 2 ~lo:(-1.) ~hi:1. in
      { Cv_nn.Train.input = x;
        target = [| (0.7 *. x.(0)) -. (0.3 *. x.(1)) +. 0.1 |] })

let test_train_reduces_loss () =
  let rng = rng () in
  let data = linear_dataset rng 200 in
  let net =
    Cv_nn.Network.random ~rng ~dims:[ 2; 8; 1 ] ~act:Cv_nn.Activation.Relu ()
  in
  let loss0 = Cv_nn.Train.loss net data in
  let trained, history =
    Cv_nn.Train.fit
      ~config:{ Cv_nn.Train.default_config with Cv_nn.Train.epochs = 30 }
      net data
  in
  let loss1 = Cv_nn.Train.loss trained data in
  Alcotest.(check bool) "loss decreased" true (loss1 < loss0 /. 2.);
  Alcotest.(check int) "history length" 30 (List.length history)

let test_backprop_matches_numeric_gradient () =
  let rng = rng () in
  let net =
    Cv_nn.Network.random ~rng ~dims:[ 2; 3; 1 ] ~act:Cv_nn.Activation.Tanh ()
  in
  let sample = { Cv_nn.Train.input = [| 0.4; -0.6 |]; target = [| 0.25 |] } in
  let grads, _ = Cv_nn.Train.backprop net sample in
  (* Numeric check on a few weight entries. *)
  let eps = 1e-6 in
  let loss_of n =
    let err =
      Cv_linalg.Vec.sub (Cv_nn.Network.eval n sample.Cv_nn.Train.input)
        sample.Cv_nn.Train.target
    in
    0.5 *. Cv_linalg.Vec.dot err err
  in
  let check_entry li r c =
    let bump delta =
      Cv_nn.Network.make
        (Array.mapi
           (fun i (l : Cv_nn.Layer.t) ->
             if i <> li then l
             else begin
               let w = Cv_linalg.Mat.copy l.Cv_nn.Layer.weights in
               Cv_linalg.Mat.set w r c (Cv_linalg.Mat.get w r c +. delta);
               Cv_nn.Layer.make w l.Cv_nn.Layer.bias l.Cv_nn.Layer.act
             end)
           (Cv_nn.Network.layers net))
    in
    let numeric = (loss_of (bump eps) -. loss_of (bump (-.eps))) /. (2. *. eps) in
    let analytic = Cv_linalg.Mat.get grads.Cv_nn.Train.d_weights.(li) r c in
    Alcotest.(check bool)
      (Printf.sprintf "grad[%d][%d,%d]" li r c)
      true
      (Float.abs (numeric -. analytic) < 1e-4)
  in
  check_entry 0 0 0;
  check_entry 0 2 1;
  check_entry 1 0 2

let test_slice_bounds () =
  let net = small_net () in
  List.iter
    (fun f -> try ignore (f ()); Alcotest.fail "should reject" with Invalid_argument _ -> ())
    [ (fun () -> Cv_nn.Network.prefix net 0);
      (fun () -> Cv_nn.Network.prefix net 4);
      (fun () -> Cv_nn.Network.suffix net 3);
      (fun () -> Cv_nn.Network.slice net ~from_:2 ~to_:2) ]

let test_train_without_clipping () =
  let rng = rng () in
  let data = linear_dataset rng 50 in
  let net =
    Cv_nn.Network.random ~rng ~dims:[ 2; 4; 1 ] ~act:Cv_nn.Activation.Relu ()
  in
  let trained, _ =
    Cv_nn.Train.fit
      ~config:
        { Cv_nn.Train.default_config with
          Cv_nn.Train.epochs = 5;
          clip_grad = None }
      net data
  in
  Alcotest.(check bool) "finite params" true
    (Float.is_finite (Cv_nn.Network.param_dist_inf net trained))

let test_fine_tune_small_drift () =
  let rng = rng () in
  let data = linear_dataset rng 100 in
  let net =
    Cv_nn.Network.random ~rng ~dims:[ 2; 6; 1 ] ~act:Cv_nn.Activation.Relu ()
  in
  let trained, _ = Cv_nn.Train.fit net data in
  let tuned, _ = Cv_nn.Train.fine_tune trained data in
  let drift = Cv_nn.Network.param_dist_inf trained tuned in
  Alcotest.(check bool) "drift small but nonzero" true
    (drift > 0. && drift < 0.5)

(* ------------------------------------------------------------------ *)
(* Serialize / Describe                                                *)
(* ------------------------------------------------------------------ *)

let test_serialize_roundtrip () =
  let net = small_net () in
  let net' = Cv_nn.Serialize.roundtrip net in
  Alcotest.(check bool) "same shape" true (Cv_nn.Network.same_shape net net');
  check_float "zero drift" 0. (Cv_nn.Network.param_dist_inf net net')

let test_serialize_file () =
  let net = small_net () in
  let path = Filename.temp_file "cv_nn_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cv_nn.Serialize.save_network ~name:"test" path net;
      let net' = Cv_nn.Serialize.load_network path in
      check_float "file roundtrip" 0. (Cv_nn.Network.param_dist_inf net net'))

let test_serialize_rejects_garbage () =
  try
    ignore (Cv_nn.Serialize.network_of_json (Cv_util.Json.parse "{\"x\": 1}"));
    Alcotest.fail "should reject"
  with Cv_util.Json.Error _ -> ()

let test_describe () =
  let net = small_net () in
  let table = Cv_nn.Describe.layer_table net in
  let contains_substring haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions relu" true (contains_substring table "relu");
  Alcotest.(check bool) "mentions totals" true (contains_substring table "total");
  Alcotest.(check string) "shape string" "[3; 5; 4; 2]"
    (Cv_nn.Describe.shape_string net)


(* ------------------------------------------------------------------ *)
(* Conv                                                                *)
(* ------------------------------------------------------------------ *)

let conv_spec =
  { Cv_nn.Conv.in_height = 8; in_width = 12; kernel = 4; stride = 3;
    out_channels = 2 }

let test_conv_dims () =
  let oh, ow = Cv_nn.Conv.out_dims conv_spec in
  Alcotest.(check (pair int int)) "out dims" (2, 3) (oh, ow);
  Alcotest.(check int) "output size" 12 (Cv_nn.Conv.output_size conv_spec)

let test_conv_matches_direct () =
  let rng = Cv_util.Rng.create 77 in
  let kernels =
    Array.init 2 (fun _ -> Cv_util.Rng.uniform_array rng 16 ~lo:(-1.) ~hi:1.)
  in
  let bias = [| 0.1; -0.2 |] in
  let layer =
    Cv_nn.Conv.to_layer conv_spec ~kernels ~bias ~act:Cv_nn.Activation.Relu
  in
  Alcotest.(check int) "layer out" 12 (Cv_nn.Layer.out_dim layer);
  Alcotest.(check int) "layer in" 96 (Cv_nn.Layer.in_dim layer);
  for _ = 1 to 30 do
    let img = Cv_util.Rng.uniform_array rng 96 ~lo:0. ~hi:1. in
    let via_layer = Cv_nn.Layer.eval layer img in
    let direct =
      Cv_nn.Conv.eval_direct conv_spec ~kernels ~bias
        ~act:Cv_nn.Activation.Relu img
    in
    Alcotest.(check bool) "lowering exact" true
      (Cv_linalg.Vec.approx_eq ~tol:1e-9 via_layer direct)
  done

let test_conv_validation () =
  (try
     ignore (Cv_nn.Conv.out_dims { conv_spec with Cv_nn.Conv.kernel = 20 });
     Alcotest.fail "kernel too large"
   with Invalid_argument _ -> ());
  try
    ignore
      (Cv_nn.Conv.to_layer conv_spec
         ~kernels:[| Array.make 16 0. |]
         ~bias:[| 0.; 0. |] ~act:Cv_nn.Activation.Relu);
    Alcotest.fail "kernel count"
  with Invalid_argument _ -> ()

let test_conv_composes_into_network () =
  let rng = Cv_util.Rng.create 5 in
  let conv = Cv_nn.Conv.random ~rng conv_spec ~act:Cv_nn.Activation.Relu in
  let head =
    Cv_nn.Layer.random ~rng ~in_dim:12 ~out_dim:1 Cv_nn.Activation.Identity
  in
  let net = Cv_nn.Network.of_list [ conv; head ] in
  let y = Cv_nn.Network.eval net (Array.make 96 0.5) in
  Alcotest.(check bool) "finite output" true (Float.is_finite y.(0))

(* ------------------------------------------------------------------ *)
(* Nnet format                                                         *)
(* ------------------------------------------------------------------ *)

let test_nnet_roundtrip () =
  let net = small_net () in
  let doc =
    Cv_nn.Nnet.of_network ~input_box:(Cv_interval.Box.uniform 3 ~lo:(-1.) ~hi:2.)
      net
  in
  let doc' = Cv_nn.Nnet.parse (Cv_nn.Nnet.to_string doc) in
  Alcotest.(check (float 1e-12)) "weights identical" 0.
    (Cv_nn.Network.param_dist_inf net doc'.Cv_nn.Nnet.network);
  Alcotest.(check bool) "box identical" true
    (Cv_interval.Box.equal doc.Cv_nn.Nnet.input_box doc'.Cv_nn.Nnet.input_box)

let test_nnet_file_roundtrip () =
  let net = small_net () in
  let doc = Cv_nn.Nnet.of_network net in
  let path = Filename.temp_file "cv_nnet" ".nnet" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cv_nn.Nnet.save path doc;
      let doc' = Cv_nn.Nnet.load path in
      Alcotest.(check (float 1e-12)) "file roundtrip" 0.
        (Cv_nn.Network.param_dist_inf net doc'.Cv_nn.Nnet.network))

let test_nnet_parse_handcrafted () =
  (* A tiny 1-hidden-layer net written by hand:
     y = identity(1*h1 - 1*h2 + 0.5), h = relu([[1,0],[0,1]]x + [0,0]). *)
  let text =
    "// test network\n\
     2,2,1,2,\n\
     2,2,1,\n\
     0,\n\
     -1,-1,\n\
     1,1,\n\
     0,0,0,\n\
     1,1,1,\n\
     1,0,\n\
     0,1,\n\
     0,\n\
     0,\n\
     1,-1,\n\
     0.5,\n"
  in
  let doc = Cv_nn.Nnet.parse text in
  let y = Cv_nn.Network.eval doc.Cv_nn.Nnet.network [| 0.7; 0.2 |] in
  Alcotest.(check (float 1e-9)) "eval" 1. y.(0);
  let y2 = Cv_nn.Network.eval doc.Cv_nn.Nnet.network [| -0.5; 0.3 |] in
  (* relu(-0.5)=0, relu(0.3)=0.3 -> 0 - 0.3 + 0.5 = 0.2 *)
  Alcotest.(check (float 1e-9)) "eval with clipping" 0.2 y2.(0)

let test_nnet_rejects_garbage () =
  (try
     ignore (Cv_nn.Nnet.parse "not a network");
     Alcotest.fail "should reject"
   with Cv_nn.Nnet.Parse_error _ -> ());
  try
    ignore
      (Cv_nn.Nnet.of_network
         (Cv_nn.Network.random ~rng:(Cv_util.Rng.create 1) ~dims:[ 2; 3; 1 ]
            ~act:Cv_nn.Activation.Sigmoid ()));
    Alcotest.fail "sigmoid unrepresentable"
  with Invalid_argument _ -> ()

let test_nnet_verifiable_after_load () =
  (* External networks drop straight into the verifier. *)
  let net = small_net () in
  let doc = Cv_nn.Nnet.of_network net in
  let doc' = Cv_nn.Nnet.parse (Cv_nn.Nnet.to_string doc) in
  let reach =
    Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint
      doc'.Cv_nn.Nnet.network doc'.Cv_nn.Nnet.input_box
  in
  Alcotest.(check int) "reach dim" 2 (Cv_interval.Box.dim reach)

let eval_trace_prop =
  QCheck.Test.make ~name:"trace entries feed forward" ~count:50
    QCheck.(list_of_size (Gen.return 3) (float_range (-2.) 2.))
    (fun xs ->
      let net = small_net () in
      let x = Array.of_list xs in
      let trace = Cv_nn.Network.eval_trace net x in
      let l1 = Cv_nn.Network.layer net 1 in
      Cv_linalg.Vec.approx_eq ~tol:1e-9 trace.(1) (Cv_nn.Layer.eval l1 trace.(0)))

let () =
  Alcotest.run "cv_nn"
    [ ( "activation",
        [ Alcotest.test_case "apply" `Quick test_activation_apply;
          Alcotest.test_case "derivative" `Quick test_activation_derivative;
          Alcotest.test_case "lipschitz" `Quick test_activation_lipschitz;
          Alcotest.test_case "interval image" `Quick
            test_activation_interval_image;
          Alcotest.test_case "json" `Quick test_activation_json;
          QCheck_alcotest.to_alcotest activation_derivative_bound_prop ] );
      ( "layer+network",
        [ Alcotest.test_case "layer eval" `Quick test_layer_eval;
          Alcotest.test_case "layer validation" `Quick test_layer_bias_mismatch;
          Alcotest.test_case "network shape" `Quick test_network_shape;
          Alcotest.test_case "eval composition" `Quick
            test_network_eval_composition;
          Alcotest.test_case "slices" `Quick test_network_slices;
          Alcotest.test_case "same_shape/dist" `Quick
            test_network_same_shape_dist;
          Alcotest.test_case "chain validation" `Quick test_network_validation;
          QCheck_alcotest.to_alcotest eval_trace_prop ] );
      ( "train",
        [ Alcotest.test_case "loss decreases" `Quick test_train_reduces_loss;
          Alcotest.test_case "backprop vs numeric gradient" `Quick
            test_backprop_matches_numeric_gradient;
          Alcotest.test_case "fine-tune drift" `Quick test_fine_tune_small_drift;
          Alcotest.test_case "slice bounds" `Quick test_slice_bounds;
          Alcotest.test_case "train without clipping" `Quick
            test_train_without_clipping ] );
      ( "conv",
        [ Alcotest.test_case "dims" `Quick test_conv_dims;
          Alcotest.test_case "matches direct" `Quick test_conv_matches_direct;
          Alcotest.test_case "validation" `Quick test_conv_validation;
          Alcotest.test_case "composes" `Quick test_conv_composes_into_network ] );
      ( "nnet",
        [ Alcotest.test_case "roundtrip" `Quick test_nnet_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_nnet_file_roundtrip;
          Alcotest.test_case "handcrafted parse" `Quick
            test_nnet_parse_handcrafted;
          Alcotest.test_case "rejects garbage" `Quick test_nnet_rejects_garbage;
          Alcotest.test_case "verifiable after load" `Quick
            test_nnet_verifiable_after_load ] );
      ( "serialize",
        [ Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_serialize_file;
          Alcotest.test_case "rejects garbage" `Quick
            test_serialize_rejects_garbage;
          Alcotest.test_case "describe" `Quick test_describe ] ) ]
