(* Tests for Cv_linalg: vectors, matrices, norms, power iteration. *)

let check_float = Alcotest.(check (float 1e-9))

let vec = Alcotest.(array (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_arith () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  Alcotest.check vec "add" [| 5.; 7.; 9. |] (Cv_linalg.Vec.add a b);
  Alcotest.check vec "sub" [| -3.; -3.; -3. |] (Cv_linalg.Vec.sub a b);
  Alcotest.check vec "scale" [| 2.; 4.; 6. |] (Cv_linalg.Vec.scale 2. a);
  Alcotest.check vec "neg" [| -1.; -2.; -3. |] (Cv_linalg.Vec.neg a);
  Alcotest.check vec "mul" [| 4.; 10.; 18. |] (Cv_linalg.Vec.mul a b);
  check_float "dot" 32. (Cv_linalg.Vec.dot a b);
  Alcotest.check vec "axpy" [| 6.; 9.; 12. |] (Cv_linalg.Vec.axpy ~alpha:2. a b)

let test_vec_norms () =
  let v = [| 3.; -4. |] in
  check_float "norm1" 7. (Cv_linalg.Vec.norm1 v);
  check_float "norm2" 5. (Cv_linalg.Vec.norm2 v);
  check_float "norm_inf" 4. (Cv_linalg.Vec.norm_inf v);
  check_float "dist2" 5. (Cv_linalg.Vec.dist2 [| 0.; 0. |] v);
  check_float "dist_inf" 4. (Cv_linalg.Vec.dist_inf [| 0.; 0. |] v)

let test_vec_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Cv_linalg.Vec.add [| 1.; 2. |] [| 1.; 2.; 3. |]))

let norm_triangle_prop =
  QCheck.Test.make ~name:"vec triangle inequality (norm2)" ~count:200
    QCheck.(pair (list_of_size (Gen.return 5) (float_range (-10.) 10.))
              (list_of_size (Gen.return 5) (float_range (-10.) 10.)))
    (fun (la, lb) ->
      let a = Array.of_list la and b = Array.of_list lb in
      Cv_linalg.Vec.norm2 (Cv_linalg.Vec.add a b)
      <= Cv_linalg.Vec.norm2 a +. Cv_linalg.Vec.norm2 b +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Mat                                                                 *)
(* ------------------------------------------------------------------ *)

let m23 = Cv_linalg.Mat.of_rows [ [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] ]

let test_mat_basics () =
  Alcotest.(check int) "rows" 2 (Cv_linalg.Mat.rows m23);
  Alcotest.(check int) "cols" 3 (Cv_linalg.Mat.cols m23);
  check_float "get" 6. (Cv_linalg.Mat.get m23 1 2);
  Alcotest.check vec "row" [| 4.; 5.; 6. |] (Cv_linalg.Mat.row m23 1);
  Alcotest.check vec "col" [| 2.; 5. |] (Cv_linalg.Mat.col m23 1)

let test_mat_matvec () =
  Alcotest.check vec "matvec" [| 14.; 32. |]
    (Cv_linalg.Mat.matvec m23 [| 1.; 2.; 3. |]);
  Alcotest.check vec "matvec_add" [| 15.; 34. |]
    (Cv_linalg.Mat.matvec_add m23 [| 1.; 2.; 3. |] [| 1.; 2. |])

let test_mat_matmul () =
  let a = Cv_linalg.Mat.of_rows [ [| 1.; 2. |]; [| 3.; 4. |] ] in
  let b = Cv_linalg.Mat.of_rows [ [| 5.; 6. |]; [| 7.; 8. |] ] in
  let c = Cv_linalg.Mat.matmul a b in
  Alcotest.check vec "row0" [| 19.; 22. |] (Cv_linalg.Mat.row c 0);
  Alcotest.check vec "row1" [| 43.; 50. |] (Cv_linalg.Mat.row c 1)

let test_mat_transpose_identity () =
  let t = Cv_linalg.Mat.transpose m23 in
  Alcotest.(check int) "t rows" 3 (Cv_linalg.Mat.rows t);
  check_float "t entry" 6. (Cv_linalg.Mat.get t 2 1);
  let i3 = Cv_linalg.Mat.identity 3 in
  Alcotest.(check bool) "m I = m" true
    (Cv_linalg.Mat.approx_eq (Cv_linalg.Mat.matmul m23 i3) m23)

let test_mat_norms () =
  (* rows abs sums: 6, 15 -> inf norm 15; col abs sums: 5, 7, 9 -> 1-norm 9 *)
  check_float "norm_inf" 15. (Cv_linalg.Mat.norm_inf m23);
  check_float "norm1" 9. (Cv_linalg.Mat.norm1 m23);
  check_float "frobenius" (sqrt 91.) (Cv_linalg.Mat.frobenius m23)

let test_spectral_norm_diag () =
  let d = Cv_linalg.Mat.of_rows [ [| 3.; 0. |]; [| 0.; -7. |] ] in
  let s = Cv_linalg.Mat.spectral_norm d in
  Alcotest.(check bool) "diag spectral = 7" true (Float.abs (s -. 7.) < 1e-6)

let spectral_sound_prop =
  QCheck.Test.make ~name:"sqrt(norm1*norminf) >= spectral estimate" ~count:50
    QCheck.(list_of_size (Gen.return 12) (float_range (-5.) 5.))
    (fun entries ->
      let m =
        Cv_linalg.Mat.init 3 4 (fun i j -> List.nth entries ((i * 4) + j))
      in
      Cv_linalg.Mat.sqrt_norm1_norminf m
      >= Cv_linalg.Mat.spectral_norm m -. 1e-6)

let matvec_linearity_prop =
  QCheck.Test.make ~name:"matvec linearity" ~count:100
    QCheck.(list_of_size (Gen.return 6) (float_range (-3.) 3.))
    (fun entries ->
      let m = Cv_linalg.Mat.init 2 3 (fun i j -> List.nth entries ((i * 3) + j)) in
      let x = [| 1.; -2.; 0.5 |] and y = [| 0.; 1.; 2. |] in
      let lhs = Cv_linalg.Mat.matvec m (Cv_linalg.Vec.add x y) in
      let rhs =
        Cv_linalg.Vec.add (Cv_linalg.Mat.matvec m x) (Cv_linalg.Mat.matvec m y)
      in
      Cv_linalg.Vec.approx_eq ~tol:1e-8 lhs rhs)

let test_mat_json_roundtrip () =
  let m = Cv_linalg.Mat.random 3 4 ~lo:(-2.) ~hi:2. in
  let m' = Cv_linalg.Mat.of_json (Cv_linalg.Mat.to_json m) in
  Alcotest.(check bool) "roundtrip" true (Cv_linalg.Mat.approx_eq m m')

let test_mat_xavier_shape () =
  let rng = Cv_util.Rng.create 3 in
  let m = Cv_linalg.Mat.xavier ~rng 8 4 in
  Alcotest.(check int) "rows" 8 (Cv_linalg.Mat.rows m);
  let limit = sqrt (6. /. 12.) in
  Alcotest.(check bool) "bounded" true (Cv_linalg.Mat.max_abs m <= limit)

let test_mat_of_rows_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Mat.of_rows: empty")
    (fun () -> ignore (Cv_linalg.Mat.of_rows []));
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows")
    (fun () -> ignore (Cv_linalg.Mat.of_rows [ [| 1. |]; [| 1.; 2. |] ]))

let () =
  Alcotest.run "cv_linalg"
    [ ( "vec",
        [ Alcotest.test_case "arithmetic" `Quick test_vec_arith;
          Alcotest.test_case "norms" `Quick test_vec_norms;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_mismatch;
          QCheck_alcotest.to_alcotest norm_triangle_prop ] );
      ( "mat",
        [ Alcotest.test_case "basics" `Quick test_mat_basics;
          Alcotest.test_case "matvec" `Quick test_mat_matvec;
          Alcotest.test_case "matmul" `Quick test_mat_matmul;
          Alcotest.test_case "transpose/identity" `Quick
            test_mat_transpose_identity;
          Alcotest.test_case "norms" `Quick test_mat_norms;
          Alcotest.test_case "spectral diag" `Quick test_spectral_norm_diag;
          Alcotest.test_case "json roundtrip" `Quick test_mat_json_roundtrip;
          Alcotest.test_case "xavier" `Quick test_mat_xavier_shape;
          Alcotest.test_case "of_rows errors" `Quick test_mat_of_rows_errors;
          QCheck_alcotest.to_alcotest spectral_sound_prop;
          QCheck_alcotest.to_alcotest matvec_linearity_prop ] ) ]
