(* Tests for Cv_lipschitz: estimator soundness and tightness ordering. *)

let check_float = Alcotest.(check (float 1e-9))

let random_net seed dims act =
  Cv_nn.Network.random ~rng:(Cv_util.Rng.create seed) ~dims ~act ()

let all_norms =
  [ Cv_lipschitz.Lipschitz.L1; Cv_lipschitz.Lipschitz.L2; Cv_lipschitz.Lipschitz.Linf ]

(* Global bound dominates sampled difference quotients, for every norm
   and several activations. *)
let global_sound_test norm () =
  let rng = Cv_util.Rng.create 99 in
  List.iter
    (fun act ->
      for seed = 1 to 3 do
        let net = random_net seed [ 3; 6; 5; 2 ] act in
        let box = Cv_interval.Box.uniform 3 ~lo:(-2.) ~hi:2. in
        let ell = Cv_lipschitz.Lipschitz.global ~norm net in
        let q = Cv_lipschitz.Lipschitz.sampled_quotient ~samples:400 ~rng ~norm net box in
        Alcotest.(check bool)
          (Printf.sprintf "%s %s seed %d: ell %.3f >= q %.3f"
             (Cv_lipschitz.Lipschitz.norm_name norm)
             (Cv_nn.Activation.to_string act) seed ell q)
          true
          (ell >= q -. 1e-9)
      done)
    [ Cv_nn.Activation.Relu; Cv_nn.Activation.Tanh; Cv_nn.Activation.Sigmoid ]

(* Local bound dominates sampled quotients over the box. *)
let local_sound_test norm () =
  let rng = Cv_util.Rng.create 7 in
  for seed = 1 to 5 do
    let net = random_net seed [ 3; 6; 5; 1 ] Cv_nn.Activation.Relu in
    let box = Cv_interval.Box.uniform 3 ~lo:0. ~hi:0.5 in
    let ell = Cv_lipschitz.Lipschitz.local ~norm net box in
    let q = Cv_lipschitz.Lipschitz.sampled_quotient ~samples:400 ~rng ~norm net box in
    Alcotest.(check bool)
      (Printf.sprintf "local %s sound" (Cv_lipschitz.Lipschitz.norm_name norm))
      true (ell >= q -. 1e-9)
  done

let test_local_tighter_than_global () =
  (* Over a small box many ReLUs are stably off, so the local bound
     should not exceed the global one. *)
  for seed = 1 to 5 do
    let net = random_net seed [ 4; 8; 6; 1 ] Cv_nn.Activation.Relu in
    let box = Cv_interval.Box.uniform 4 ~lo:(-0.2) ~hi:0.2 in
    let g = Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net in
    let l = Cv_lipschitz.Lipschitz.local ~norm:Cv_lipschitz.Lipschitz.Linf net box in
    Alcotest.(check bool) "local <= global" true (l <= g +. 1e-9)
  done

let test_linear_network_exact () =
  (* For a 1-layer identity network the Linf bound equals ‖W‖∞. *)
  let w = Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| 0.5; 0.25 |] ] in
  let net =
    Cv_nn.Network.make
      [| Cv_nn.Layer.make w [| 0.; 0. |] Cv_nn.Activation.Identity |]
  in
  check_float "linf = 3" 3.
    (Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net);
  check_float "l1 = 2.25" 2.25
    (Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.L1 net)

let test_sigmoid_factor () =
  (* Sigmoid contributes its 1/4 slope bound. *)
  let w = Cv_linalg.Mat.of_rows [ [| 4. |] ] in
  let net =
    Cv_nn.Network.make [| Cv_nn.Layer.make w [| 0. |] Cv_nn.Activation.Sigmoid |]
  in
  check_float "0.25 * 4" 1.
    (Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net)

let test_kappa_norms () =
  let old_box = Cv_interval.Box.uniform 2 ~lo:1. ~hi:2. in
  let new_box = Cv_interval.Box.uniform 2 ~lo:0.99 ~hi:2.01 in
  check_float "linf" 0.01
    (Cv_lipschitz.Lipschitz.kappa ~norm:Cv_lipschitz.Lipschitz.Linf ~old_box
       ~new_box);
  Alcotest.(check (float 1e-12)) "l2" (0.01 *. sqrt 2.)
    (Cv_lipschitz.Lipschitz.kappa ~norm:Cv_lipschitz.Lipschitz.L2 ~old_box
       ~new_box);
  (* Per-axis worst overhang is 0.01 (one side at a time), so the worst
     L1 distance of a corner point is 0.01 + 0.01. *)
  check_float "l1" 0.02
    (Cv_lipschitz.Lipschitz.kappa ~norm:Cv_lipschitz.Lipschitz.L1 ~old_box
       ~new_box)

(* Paper Prop 3 worked example: ell=100, kappa=0.02, S_n=[1,8],
   D_out=[-10,10]: inflated [-1,10] ⊆ D_out. *)
let test_paper_prop3_example () =
  let s_n = Cv_interval.Box.of_bounds [| 1. |] [| 8. |] in
  let dout = Cv_interval.Box.of_bounds [| -10. |] [| 10. |] in
  let inflated = Cv_interval.Box.expand (100. *. 0.02) s_n in
  Alcotest.(check bool) "inflated = [-1, 10]" true
    (Cv_interval.Box.equal inflated (Cv_interval.Box.of_bounds [| -1. |] [| 10. |]));
  Alcotest.(check bool) "within dout" true (Cv_interval.Box.subset inflated dout)

let lipschitz_bound_prop =
  QCheck.Test.make ~name:"global linf bound dominates random pairs" ~count:50
    QCheck.(pair (int_range 1 500)
              (pair (list_of_size (Gen.return 3) (float_range (-1.) 1.))
                 (list_of_size (Gen.return 3) (float_range (-1.) 1.))))
    (fun (seed, (lx, ly)) ->
      let net = random_net seed [ 3; 5; 1 ] Cv_nn.Activation.Relu in
      let x = Array.of_list lx and y = Array.of_list ly in
      let dx = Cv_linalg.Vec.dist_inf x y in
      if dx < 1e-9 then true
      else begin
        let dy =
          Cv_linalg.Vec.dist_inf (Cv_nn.Network.eval net x)
            (Cv_nn.Network.eval net y)
        in
        dy /. dx
        <= Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net
           +. 1e-9
      end)

let () =
  let sound_cases =
    List.map
      (fun n ->
        Alcotest.test_case
          ("global sound " ^ Cv_lipschitz.Lipschitz.norm_name n)
          `Quick (global_sound_test n))
      all_norms
    @ List.map
        (fun n ->
          Alcotest.test_case
            ("local sound " ^ Cv_lipschitz.Lipschitz.norm_name n)
            `Quick (local_sound_test n))
        all_norms
  in
  Alcotest.run "cv_lipschitz"
    [ ("soundness", sound_cases @ [ QCheck_alcotest.to_alcotest lipschitz_bound_prop ]);
      ( "tightness",
        [ Alcotest.test_case "local <= global" `Quick
            test_local_tighter_than_global;
          Alcotest.test_case "linear exact" `Quick test_linear_network_exact;
          Alcotest.test_case "sigmoid factor" `Quick test_sigmoid_factor ] );
      ( "kappa",
        [ Alcotest.test_case "norm variants" `Quick test_kappa_norms;
          Alcotest.test_case "paper Prop 3 example" `Quick
            test_paper_prop3_example ] ) ]
