(* End-to-end smoke tests of the contiver CLI binary: generate →
   describe → verify → svudc → svbtv → diff, driving the executable the
   way a user would. *)

(* Under `dune runtest` the cwd is _build/default/test; under
   `dune exec` it is the workspace root. *)
let exe =
  List.find_opt Sys.file_exists
    [ "../bin/contiver.exe"; "_build/default/bin/contiver.exe";
      "bin/contiver.exe" ]
  |> Option.value ~default:"../bin/contiver.exe"

let tmp_dir = Filename.concat (Filename.get_temp_dir_name ()) "contiver_cli_test"

let run args =
  let cmd = Filename.quote_command exe args ^ " > /dev/null 2>&1" in
  Sys.command cmd

let check_run ?(expect = 0) name args =
  Alcotest.(check int) name expect (run args)

let test_help () =
  check_run "--help" [ "--help" ];
  check_run "svudc --help" [ "svudc"; "--help" ]

let test_unknown_command () =
  Alcotest.(check bool) "nonzero exit" true (run [ "frobnicate" ] <> 0)

let test_generate_and_describe () =
  ignore (Sys.command ("rm -rf " ^ Filename.quote tmp_dir));
  check_run "generate" [ "generate"; "--out"; tmp_dir; "--seed"; "7" ];
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " exists") true
        (Sys.file_exists (Filename.concat tmp_dir f)))
    [ "head1.json"; "head5.json"; "property.json"; "din.json";
      "enlarged_din.json" ];
  check_run "describe" [ "describe"; "--model"; Filename.concat tmp_dir "head1.json" ]

let test_verify_and_reuse () =
  (* depends on test_generate_and_describe having populated tmp_dir *)
  let path f = Filename.concat tmp_dir f in
  check_run "verify (abstract)"
    [ "verify"; "--model"; path "head1.json"; "--property";
      path "property.json"; "--artifact"; path "proof.json" ];
  Alcotest.(check bool) "artifact written" true (Sys.file_exists (path "proof.json"));
  check_run "svudc"
    [ "svudc"; "--model"; path "head1.json"; "--artifact"; path "proof.json";
      "--new-din"; path "enlarged_din.json" ];
  check_run "svbtv"
    [ "svbtv"; "--old"; path "head1.json"; "--new"; path "head2.json";
      "--artifact"; path "proof.json"; "--new-din"; path "enlarged_din.json" ];
  check_run "diff"
    [ "diff"; "--old"; path "head1.json"; "--new"; path "head2.json";
      "--din"; path "din.json" ];
  check_run "suspects"
    [ "suspects"; "--model"; path "head1.json"; "--property";
      path "property.json" ];
  check_run "export-nnet"
    [ "export-nnet"; "--model"; path "head1.json"; "--din"; path "din.json";
      "--out"; path "head1.nnet" ];
  Alcotest.(check bool) "nnet written" true (Sys.file_exists (path "head1.nnet"));
  check_run "import-nnet"
    [ "import-nnet"; "--nnet"; path "head1.nnet"; "--out";
      path "head1_roundtrip.json" ];
  Alcotest.(check bool) "model written" true
    (Sys.file_exists (path "head1_roundtrip.json"))

let test_verify_rejects_missing_file () =
  Alcotest.(check bool) "missing model rejected" true
    (run [ "describe"; "--model"; "/nonexistent.json" ] <> 0)

let () =
  if not (Sys.file_exists exe) then begin
    print_endline "contiver binary not found; skipping CLI tests";
    exit 0
  end;
  Alcotest.run "cv_cli"
    [ ( "cli",
        [ Alcotest.test_case "help" `Quick test_help;
          Alcotest.test_case "unknown command" `Quick test_unknown_command;
          Alcotest.test_case "generate+describe" `Quick
            test_generate_and_describe;
          Alcotest.test_case "verify+reuse" `Quick test_verify_and_reuse;
          Alcotest.test_case "missing file" `Quick
            test_verify_rejects_missing_file ] ) ]
