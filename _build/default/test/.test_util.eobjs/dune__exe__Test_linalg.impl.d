test/test_linalg.ml: Alcotest Array Cv_linalg Cv_util Float Gen List QCheck QCheck_alcotest
