test/test_splitcert.mli:
