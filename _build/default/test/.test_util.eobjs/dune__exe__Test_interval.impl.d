test/test_interval.ml: Alcotest Cv_interval Cv_util Float List QCheck QCheck_alcotest
