test/test_splitcert.ml: Alcotest Array Cv_artifacts Cv_core Cv_domains Cv_interval Cv_linalg Cv_nn Cv_util Cv_verify Option
