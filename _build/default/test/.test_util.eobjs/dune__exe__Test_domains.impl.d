test/test_domains.ml: Alcotest Array Cv_domains Cv_interval Cv_linalg Cv_nn Cv_util Gen List Printf QCheck QCheck_alcotest
