test/test_specchange.ml: Alcotest Array Cv_artifacts Cv_core Cv_domains Cv_interval Cv_lipschitz Cv_nn Cv_util Cv_verify List Option
