test/test_lipschitz.mli:
