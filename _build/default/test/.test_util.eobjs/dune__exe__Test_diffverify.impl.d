test/test_diffverify.ml: Alcotest Array Cv_artifacts Cv_core Cv_diffverify Cv_domains Cv_interval Cv_lipschitz Cv_nn Cv_util Cv_verify Float Printf QCheck QCheck_alcotest
