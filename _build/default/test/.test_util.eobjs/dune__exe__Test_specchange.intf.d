test/test_specchange.mli:
