test/test_diffverify.mli:
