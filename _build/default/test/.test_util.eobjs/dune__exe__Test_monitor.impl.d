test/test_monitor.ml: Alcotest Array Cv_interval Cv_linalg Cv_monitor Cv_nn Cv_util Gen List QCheck QCheck_alcotest
