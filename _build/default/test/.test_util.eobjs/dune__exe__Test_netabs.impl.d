test/test_netabs.ml: Alcotest Array Cv_domains Cv_interval Cv_linalg Cv_netabs Cv_nn Cv_util Float Printf
