test/test_netabs.mli:
