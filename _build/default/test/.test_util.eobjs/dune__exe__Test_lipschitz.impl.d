test/test_lipschitz.ml: Alcotest Array Cv_interval Cv_linalg Cv_lipschitz Cv_nn Cv_util Gen List Printf QCheck QCheck_alcotest
