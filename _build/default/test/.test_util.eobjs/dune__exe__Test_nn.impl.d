test/test_nn.ml: Alcotest Array Cv_domains Cv_interval Cv_linalg Cv_nn Cv_util Filename Float Fun Gen List Printf QCheck QCheck_alcotest String Sys
