test/test_util.ml: Alcotest Array Cv_util Float Fun QCheck QCheck_alcotest String
