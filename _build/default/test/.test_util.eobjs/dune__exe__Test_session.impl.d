test/test_session.ml: Alcotest Array Cv_core Cv_domains Cv_interval Cv_nn Cv_util Cv_verify List String
