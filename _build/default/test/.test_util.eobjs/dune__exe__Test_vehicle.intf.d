test/test_vehicle.mli:
