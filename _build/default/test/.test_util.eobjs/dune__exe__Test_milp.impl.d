test/test_milp.ml: Alcotest Array Cv_domains Cv_interval Cv_linalg Cv_lp Cv_milp Cv_nn Cv_util Float Gen List QCheck QCheck_alcotest
