test/test_artifacts.mli:
