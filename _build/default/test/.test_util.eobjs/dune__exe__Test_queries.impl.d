test/test_queries.ml: Alcotest Array Cv_interval Cv_linalg Cv_lipschitz Cv_nn Cv_util Cv_verify Float
