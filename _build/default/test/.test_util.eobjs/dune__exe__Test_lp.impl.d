test/test_lp.ml: Alcotest Array Cv_lp Float Gen List QCheck QCheck_alcotest
