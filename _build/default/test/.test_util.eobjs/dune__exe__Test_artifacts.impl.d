test/test_artifacts.ml: Alcotest Array Cv_artifacts Cv_domains Cv_interval Cv_nn Cv_util Cv_verify Filename Fun List Sys
