test/test_vehicle.ml: Alcotest Array Cv_domains Cv_interval Cv_monitor Cv_nn Cv_util Cv_vehicle Float List Printf String
