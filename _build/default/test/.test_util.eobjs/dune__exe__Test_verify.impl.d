test/test_verify.ml: Alcotest Array Cv_domains Cv_interval Cv_linalg Cv_nn Cv_util Cv_verify Float List QCheck QCheck_alcotest
