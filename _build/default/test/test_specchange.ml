(* Tests for Cv_core.Specchange (SVuSC — specification evolution). *)

let scenario () =
  let net =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 15) ~dims:[ 4; 6; 5; 1 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  let din = Cv_interval.Box.uniform 4 ~lo:0. ~hi:1. in
  let chain =
    Cv_domains.Analyzer.abstractions ~widen:0.02 Cv_domains.Analyzer.Symint net
      din
  in
  let dout = Cv_interval.Box.expand 0.1 (chain.(Array.length chain - 1)) in
  let prop = Cv_verify.Property.make ~din ~dout in
  let ell =
    Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net
  in
  let artifact =
    Cv_artifacts.Artifacts.make ~state_abstractions:chain
      ~lipschitz:[ ("Linf", ell) ]
      ~property:prop ~net ~solver:"chain" ~solve_seconds:1. ()
  in
  (net, din, dout, chain, artifact)

let test_validation () =
  let net, _, dout, _, artifact = scenario () in
  let other =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 99) ~dims:[ 4; 6; 5; 1 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  (try
     ignore (Cv_core.Specchange.make ~net:other ~artifact ~new_dout:dout ());
     Alcotest.fail "foreign artifact"
   with Invalid_argument _ -> ());
  try
    ignore
      (Cv_core.Specchange.make ~net ~artifact
         ~new_dout:(Cv_interval.Box.uniform 2 ~lo:0. ~hi:1.)
         ());
    Alcotest.fail "wrong dout dimension"
  with Invalid_argument _ -> ()

let test_trivial_relaxation () =
  let net, _, dout, _, artifact = scenario () in
  let relaxed = Cv_interval.Box.expand 1.0 dout in
  let p = Cv_core.Specchange.make ~net ~artifact ~new_dout:relaxed () in
  let a = Cv_core.Specchange.trivial p in
  Alcotest.(check bool) "relaxation trivially safe" true (Cv_core.Report.is_safe a)

let test_chain_under_mild_tightening () =
  (* D_out was built with a 0.1 margin over S_n; tightening it to the
     0.05 margin keeps S_n inside, so the chain route fires without any
     solver. *)
  let net, _, _, chain, artifact = scenario () in
  let s_n = chain.(Array.length chain - 1) in
  let tightened = Cv_interval.Box.expand 0.05 s_n in
  let p = Cv_core.Specchange.make ~net ~artifact ~new_dout:tightened () in
  let a = Cv_core.Specchange.trivial p in
  Alcotest.(check bool) "not trivial (spec tightened)" true
    (not (Cv_core.Report.is_safe a));
  let a2 = Cv_core.Specchange.chain p in
  Alcotest.(check bool) ("chain: " ^ a2.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a2)

let test_chain_with_enlargement () =
  let net, din, _, chain, artifact = scenario () in
  let s_n = chain.(Array.length chain - 1) in
  (* enlarge the domain a hair and widen the spec by more than ℓκ *)
  let ell =
    Option.get (Cv_artifacts.Artifacts.lipschitz_for artifact "Linf")
  in
  let kappa = 0.0005 in
  let new_din = Cv_interval.Box.expand kappa din in
  let new_dout = Cv_interval.Box.expand (2. *. ell *. kappa) s_n in
  let p = Cv_core.Specchange.make ~net ~artifact ~new_dout ~new_din () in
  let a = Cv_core.Specchange.chain p in
  Alcotest.(check bool) ("chain+κ: " ^ a.Cv_core.Report.detail) true
    (Cv_core.Report.is_safe a)

let test_solve_pipeline_and_soundness () =
  let net, din, _, chain, artifact = scenario () in
  let s_n = chain.(Array.length chain - 1) in
  let tightened = Cv_interval.Box.expand 0.01 s_n in
  let p = Cv_core.Specchange.make ~net ~artifact ~new_dout:tightened () in
  let r = Cv_core.Specchange.solve p in
  (match r.Cv_core.Report.verdict with
  | Cv_core.Report.Safe -> ()
  | v -> Alcotest.failf "expected safe: %s" (Cv_core.Report.outcome_string v));
  (* Safe claim must hold empirically. *)
  let rng = Cv_util.Rng.create 808 in
  for _ = 1 to 2000 do
    let x = Cv_interval.Box.sample rng din in
    Alcotest.(check bool) "empirically safe" true
      (Cv_interval.Box.mem_tol ~tol:1e-7 (Cv_nn.Network.eval net x) tightened)
  done

let test_solve_falls_back_on_hard_tightening () =
  let net, _, _, chain, artifact = scenario () in
  let s_n = chain.(Array.length chain - 1) in
  (* Shrink the spec strictly inside S_n: the chain cannot prove it and
     the full fallback must run (and may prove or refute). *)
  let iv = Cv_interval.Box.get s_n 0 in
  let c = Cv_interval.Interval.center iv in
  let tightened =
    Cv_interval.Box.make
      [| Cv_interval.Interval.make (c -. 1e-4) (c +. 1e-4) |]
  in
  let p = Cv_core.Specchange.make ~net ~artifact ~new_dout:tightened () in
  let r = Cv_core.Specchange.solve p in
  Alcotest.(check bool) "fallback ran" true
    (List.exists (fun a -> a.Cv_core.Report.name = "full") r.Cv_core.Report.attempts)

let () =
  Alcotest.run "cv_specchange"
    [ ( "svusc",
        [ Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "trivial relaxation" `Quick test_trivial_relaxation;
          Alcotest.test_case "chain under tightening" `Quick
            test_chain_under_mild_tightening;
          Alcotest.test_case "chain with enlargement" `Quick
            test_chain_with_enlargement;
          Alcotest.test_case "solve pipeline" `Quick
            test_solve_pipeline_and_soundness;
          Alcotest.test_case "fallback on hard tightening" `Quick
            test_solve_falls_back_on_hard_tightening ] ) ]
