(* Tests for Cv_vehicle: track geometry, camera, perception, dataset,
   controller and the end-to-end pipeline (scaled down for speed). *)

let check_float = Alcotest.(check (float 1e-6))

let track () = Cv_vehicle.Track.stadium ()

(* ------------------------------------------------------------------ *)
(* Track                                                               *)
(* ------------------------------------------------------------------ *)

let test_track_closed_loop () =
  let t = track () in
  let p0 = Cv_vehicle.Track.point_at t 0. in
  let p1 = Cv_vehicle.Track.point_at t t.Cv_vehicle.Track.length in
  Alcotest.(check bool) "wraps" true
    (Float.abs (p0.Cv_vehicle.Track.x -. p1.Cv_vehicle.Track.x) < 1e-6
    && Float.abs (p0.Cv_vehicle.Track.y -. p1.Cv_vehicle.Track.y) < 1e-6)

let test_track_length () =
  let t = Cv_vehicle.Track.stadium ~straight:6. ~radius:2. () in
  check_float "perimeter" (12. +. (4. *. Float.pi)) t.Cv_vehicle.Track.length

let test_pose_on_centerline () =
  let t = track () in
  for i = 0 to 9 do
    let s = float_of_int i /. 10. *. t.Cv_vehicle.Track.length in
    let pose = Cv_vehicle.Track.pose_at t s in
    Alcotest.(check bool) "offset ~ 0" true
      (Float.abs (Cv_vehicle.Track.lateral_offset t pose) < 0.05);
    Alcotest.(check bool) "heading ~ 0" true
      (Float.abs (Cv_vehicle.Track.relative_heading t pose) < 0.2);
    Alcotest.(check bool) "on track" true (Cv_vehicle.Track.on_track t pose)
  done

let test_lateral_offset_sign () =
  let t = track () in
  let s = 1.0 in
  let left = Cv_vehicle.Track.pose_at ~lateral:0.2 t s in
  let right = Cv_vehicle.Track.pose_at ~lateral:(-0.2) t s in
  Alcotest.(check bool) "left positive" true
    (Cv_vehicle.Track.lateral_offset t left > 0.1);
  Alcotest.(check bool) "right negative" true
    (Cv_vehicle.Track.lateral_offset t right < -0.1)

let test_off_track () =
  let t = track () in
  let pose = Cv_vehicle.Track.pose_at ~lateral:1.0 t 1. in
  Alcotest.(check bool) "off track" false (Cv_vehicle.Track.on_track t pose)

let test_curvature () =
  let t = Cv_vehicle.Track.stadium ~straight:6. ~radius:2. () in
  (* Mid-straight: near-zero curvature; mid-curve: about 1/radius. *)
  let k_straight = Cv_vehicle.Track.curvature_at t 3. in
  let k_curve = Cv_vehicle.Track.curvature_at t (6. +. (Float.pi *. 2. /. 2.)) in
  Alcotest.(check bool) "straight flat" true (Float.abs k_straight < 0.05);
  Alcotest.(check bool) "curve ~ 1/r" true (Float.abs (k_curve -. 0.5) < 0.15)

let test_render () =
  let t = track () in
  let s = Cv_vehicle.Track.render t [ Cv_vehicle.Track.pose_at t 0. ] in
  Alcotest.(check bool) "has centerline" true (String.contains s '.');
  Alcotest.(check bool) "has vehicle" true (String.contains s 'o')

(* ------------------------------------------------------------------ *)
(* Camera                                                              *)
(* ------------------------------------------------------------------ *)

let test_camera_shape_and_range () =
  let t = track () in
  let cfg = Cv_vehicle.Camera.default_config in
  let img =
    Cv_vehicle.Camera.capture cfg Cv_vehicle.Camera.nominal t
      (Cv_vehicle.Track.pose_at t 1.)
  in
  Alcotest.(check int) "pixels" (Cv_vehicle.Camera.pixels cfg) (Array.length img);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "pixel in range" true (v >= 0. && v <= 1.5))
    img

let test_camera_sees_lane () =
  (* On the centerline looking forward, the image must contain a bright
     ridge (some pixel well above background). *)
  let t = track () in
  let cfg = Cv_vehicle.Camera.default_config in
  let img =
    Cv_vehicle.Camera.capture cfg Cv_vehicle.Camera.nominal t
      (Cv_vehicle.Track.pose_at t 1.)
  in
  Alcotest.(check bool) "bright ridge" true
    (Array.exists (fun v -> v > 0.8) img)

let test_camera_conditions_shift () =
  let t = track () in
  let cfg = Cv_vehicle.Camera.default_config in
  let pose = Cv_vehicle.Track.pose_at t 1. in
  let nominal = Cv_vehicle.Camera.capture cfg Cv_vehicle.Camera.nominal t pose in
  let shifted = Cv_vehicle.Camera.capture cfg Cv_vehicle.Camera.shifted t pose in
  let mean a = Cv_util.Stats.mean a in
  Alcotest.(check bool) "shifted brighter" true (mean shifted > mean nominal)

let test_camera_deterministic_without_rng () =
  let t = track () in
  let cfg = Cv_vehicle.Camera.default_config in
  let pose = Cv_vehicle.Track.pose_at t 2. in
  let a = Cv_vehicle.Camera.capture cfg Cv_vehicle.Camera.nominal t pose in
  let b = Cv_vehicle.Camera.capture cfg Cv_vehicle.Camera.nominal t pose in
  Alcotest.(check (array (float 1e-12))) "deterministic" a b

let test_ascii_render () =
  let t = track () in
  let cfg = Cv_vehicle.Camera.default_config in
  let img =
    Cv_vehicle.Camera.capture cfg Cv_vehicle.Camera.nominal t
      (Cv_vehicle.Track.pose_at t 1.)
  in
  let s = Cv_vehicle.Camera.ascii cfg img in
  Alcotest.(check int) "lines" cfg.Cv_vehicle.Camera.height
    (List.length (String.split_on_char '\n' s) - 1)

(* ------------------------------------------------------------------ *)
(* Perception / Dataset                                                *)
(* ------------------------------------------------------------------ *)

let test_perception_shapes () =
  let rng = Cv_util.Rng.create 5 in
  let p = Cv_vehicle.Perception.create ~rng ~features:10 () in
  Alcotest.(check int) "feature dim" 10 (Cv_vehicle.Perception.feature_dim p);
  let t = track () in
  let img =
    Cv_vehicle.Camera.capture p.Cv_vehicle.Perception.camera
      Cv_vehicle.Camera.nominal t (Cv_vehicle.Track.pose_at t 1.)
  in
  let feats = Cv_vehicle.Perception.features_of p img in
  Alcotest.(check int) "features" 10 (Array.length feats);
  Array.iter
    (fun f -> Alcotest.(check bool) "post-relu nonneg" true (f >= 0.))
    feats;
  let v = Cv_vehicle.Perception.v_out p img in
  Alcotest.(check bool) "finite" true (Float.is_finite v)

let test_waypoint_formula () =
  let p = Cv_vehicle.Perception.create ~rng:(Cv_util.Rng.create 5) () in
  let x, _y = Cv_vehicle.Perception.waypoint p 0.5 in
  let w = p.Cv_vehicle.Perception.camera.Cv_vehicle.Camera.width in
  Alcotest.(check bool) "midline" true (abs (x - ((w - 1) / 2)) <= 1);
  let x0, _ = Cv_vehicle.Perception.waypoint p (-3.) in
  Alcotest.(check int) "clamped low" 0 x0;
  let x1, _ = Cv_vehicle.Perception.waypoint p 7. in
  Alcotest.(check int) "clamped high" (w - 1) x1

let test_steering_label_range_and_sense () =
  let t = track () in
  for i = 0 to 9 do
    let s = float_of_int i /. 10. *. t.Cv_vehicle.Track.length in
    let label = Cv_vehicle.Perception.steering_label t (Cv_vehicle.Track.pose_at t s) in
    Alcotest.(check bool) "in [0,1]" true (label >= 0. && label <= 1.)
  done;
  (* A pose yawed to the left of the track direction must steer right
     (label > 0.5) to regain the lane — the waypoint appears to the
     vehicle's right. *)
  let straight_s = 1.0 in
  let yawed_left = Cv_vehicle.Track.pose_at ~heading_err:0.3 t straight_s in
  let yawed_right = Cv_vehicle.Track.pose_at ~heading_err:(-0.3) t straight_s in
  let ll = Cv_vehicle.Perception.steering_label t yawed_left in
  let lr = Cv_vehicle.Perception.steering_label t yawed_right in
  Alcotest.(check bool) "labels differ by yaw" true (lr > ll)

let test_dataset_generation () =
  let rng = Cv_util.Rng.create 5 in
  let t = track () in
  let p = Cv_vehicle.Perception.create ~rng ~features:8 () in
  let data = Cv_vehicle.Dataset.generate ~rng ~track:t ~perception:p 50 in
  Alcotest.(check int) "count" 50 (List.length data);
  List.iter
    (fun s ->
      Alcotest.(check bool) "label range" true
        (s.Cv_vehicle.Dataset.label >= 0. && s.Cv_vehicle.Dataset.label <= 1.))
    data;
  let training = Cv_vehicle.Dataset.to_training data in
  Alcotest.(check int) "training count" 50 (List.length training)

let test_training_improves_head () =
  let rng = Cv_util.Rng.create 6 in
  let t = track () in
  let p = Cv_vehicle.Perception.create ~rng ~features:8 () in
  let data = Cv_vehicle.Dataset.generate ~rng ~track:t ~perception:p 150 in
  let before = Cv_vehicle.Dataset.head_mse p data in
  let trained, _ =
    Cv_nn.Train.fit
      ~config:{ Cv_nn.Train.default_config with Cv_nn.Train.epochs = 25 }
      p.Cv_vehicle.Perception.head
      (Cv_vehicle.Dataset.to_training data)
  in
  let p' = Cv_vehicle.Perception.with_head p trained in
  let after = Cv_vehicle.Dataset.head_mse p' data in
  Alcotest.(check bool)
    (Printf.sprintf "mse %.4f -> %.4f" before after)
    true (after < before)

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)
(* ------------------------------------------------------------------ *)

let test_steer_mapping () =
  let cfg = Cv_vehicle.Controller.default_config in
  check_float "center straight" 0. (Cv_vehicle.Controller.steer_of_vout cfg 0.5);
  Alcotest.(check bool) "left negative" true
    (Cv_vehicle.Controller.steer_of_vout cfg 0. < 0.);
  Alcotest.(check bool) "right positive" true
    (Cv_vehicle.Controller.steer_of_vout cfg 1. > 0.);
  Alcotest.(check bool) "clamped" true
    (Cv_vehicle.Controller.steer_of_vout cfg 10.
    <= cfg.Cv_vehicle.Controller.max_steer +. 1e-9)

let test_step_kinematics () =
  let t = track () in
  let cfg = Cv_vehicle.Controller.default_config in
  let st = Cv_vehicle.Controller.init t ~s:0. in
  let st' = Cv_vehicle.Controller.step cfg t st ~steer:0. in
  Alcotest.(check int) "steps" 1 st'.Cv_vehicle.Controller.steps;
  (* straight steering on a straight: still on track *)
  Alcotest.(check bool) "moved forward" true
    (st'.Cv_vehicle.Controller.pose.Cv_vehicle.Track.px
    > st.Cv_vehicle.Controller.pose.Cv_vehicle.Track.px)

let test_drive_telemetry () =
  let rng = Cv_util.Rng.create 8 in
  let t = track () in
  let p = Cv_vehicle.Perception.create ~rng ~features:8 () in
  let monitor =
    Cv_monitor.Monitor.of_box
      (Cv_interval.Box.uniform 8 ~lo:(-1000.) ~hi:1000.)
  in
  let st = Cv_vehicle.Controller.init t ~s:0. in
  let _final, trace =
    Cv_vehicle.Controller.drive ~rng ~track:t ~perception:p ~monitor ~steps:20 st
  in
  Alcotest.(check int) "telemetry length" 20 (List.length trace);
  List.iter
    (fun tel ->
      Alcotest.(check bool) "no ood within huge box" false
        tel.Cv_vehicle.Controller.t_ood)
    trace

(* ------------------------------------------------------------------ *)
(* Pipeline (scaled down)                                              *)
(* ------------------------------------------------------------------ *)

let small_config =
  { Cv_vehicle.Pipeline.default_config with
    Cv_vehicle.Pipeline.features = 8;
    train_samples = 80;
    train_epochs = 8;
    fine_tune_rounds = 2;
    fine_tune_samples = 40;
    fine_tune_epochs = 2;
    drive_steps = 60 }

let test_pipeline_build () =
  let exp = Cv_vehicle.Pipeline.build ~config:small_config () in
  Alcotest.(check int) "heads" 3 (Array.length exp.Cv_vehicle.Pipeline.heads);
  Alcotest.(check bool) "din inside enlarged" true
    (Cv_interval.Box.subset exp.Cv_vehicle.Pipeline.din
       exp.Cv_vehicle.Pipeline.enlarged_din);
  (* D_out certifies the original head via the chain by construction *)
  let chain =
    Cv_domains.Analyzer.abstractions
      ~widen:small_config.Cv_vehicle.Pipeline.widen Cv_domains.Analyzer.Symint
      exp.Cv_vehicle.Pipeline.heads.(0) exp.Cv_vehicle.Pipeline.din
  in
  Alcotest.(check bool) "S_n within dout" true
    (Cv_interval.Box.subset_tol
       chain.(Array.length chain - 1)
       exp.Cv_vehicle.Pipeline.dout);
  (* fine-tuned heads drift but share shape *)
  for i = 1 to 2 do
    Alcotest.(check bool) "shape" true
      (Cv_nn.Network.same_shape
         exp.Cv_vehicle.Pipeline.heads.(0)
         exp.Cv_vehicle.Pipeline.heads.(i));
    Alcotest.(check bool) "drift positive" true
      (Cv_vehicle.Pipeline.drift exp i > 0.)
  done

let test_pipeline_determinism () =
  let a = Cv_vehicle.Pipeline.build ~config:small_config () in
  let b = Cv_vehicle.Pipeline.build ~config:small_config () in
  Alcotest.(check (float 1e-12)) "same kappa" a.Cv_vehicle.Pipeline.kappa
    b.Cv_vehicle.Pipeline.kappa;
  Alcotest.(check int) "same events" a.Cv_vehicle.Pipeline.ood_events
    b.Cv_vehicle.Pipeline.ood_events;
  Alcotest.(check (float 1e-12)) "same nets" 0.
    (Cv_nn.Network.param_dist_inf
       a.Cv_vehicle.Pipeline.heads.(1)
       b.Cv_vehicle.Pipeline.heads.(1))

let () =
  Alcotest.run "cv_vehicle"
    [ ( "track",
        [ Alcotest.test_case "closed loop" `Quick test_track_closed_loop;
          Alcotest.test_case "length" `Quick test_track_length;
          Alcotest.test_case "pose on centerline" `Quick test_pose_on_centerline;
          Alcotest.test_case "lateral sign" `Quick test_lateral_offset_sign;
          Alcotest.test_case "off track" `Quick test_off_track;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "curvature" `Quick test_curvature ] );
      ( "camera",
        [ Alcotest.test_case "shape/range" `Quick test_camera_shape_and_range;
          Alcotest.test_case "sees lane" `Quick test_camera_sees_lane;
          Alcotest.test_case "conditions shift" `Quick
            test_camera_conditions_shift;
          Alcotest.test_case "deterministic" `Quick
            test_camera_deterministic_without_rng;
          Alcotest.test_case "ascii" `Quick test_ascii_render ] );
      ( "perception+dataset",
        [ Alcotest.test_case "shapes" `Quick test_perception_shapes;
          Alcotest.test_case "waypoint formula" `Quick test_waypoint_formula;
          Alcotest.test_case "steering label" `Quick
            test_steering_label_range_and_sense;
          Alcotest.test_case "dataset" `Quick test_dataset_generation;
          Alcotest.test_case "training improves" `Quick
            test_training_improves_head ] );
      ( "controller",
        [ Alcotest.test_case "steer mapping" `Quick test_steer_mapping;
          Alcotest.test_case "kinematics" `Quick test_step_kinematics;
          Alcotest.test_case "drive telemetry" `Quick test_drive_telemetry ] );
      ( "pipeline",
        [ Alcotest.test_case "build" `Quick test_pipeline_build;
          Alcotest.test_case "determinism" `Quick test_pipeline_determinism ] ) ]
