(** Human-readable network summaries (the bench regenerates the paper's
    Figure 4 architecture diagram as this table). *)

(** [layer_table net] renders one line per layer: index, shape,
    activation, parameter count, plus totals. *)
val layer_table : Network.t -> string

(** [shape_string net] is e.g. ["[8; 16; 16; 1]"]. *)
val shape_string : Network.t -> string
