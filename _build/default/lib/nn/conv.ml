(** 2-D convolution lowered to dense layers.

    The paper's perception network is a CNN whose convolutional part is
    frozen and cut away before verification (Figure 4); only the dense
    head is verified. To model that pipeline faithfully, this module
    materialises a convolution (kernel, stride, ReLU) as an ordinary
    {!Layer} whose weight matrix is the (sparse-in-content, dense-in-
    representation) im2row operator — so the frozen extractor really is
    a convolution, while remaining a plain affine layer for every
    analysis in the repo.

    Layout conventions: images are row-major flattened [height × width]
    single-channel vectors (matching {!Cv_vehicle.Camera}); multiple
    output channels are stacked feature-map-major. *)

type spec = {
  in_height : int;
  in_width : int;
  kernel : int;  (** square kernel side *)
  stride : int;
  out_channels : int;
}

(** [out_dims spec] is [(out_height, out_width)]. *)
let out_dims spec =
  if spec.kernel > spec.in_height || spec.kernel > spec.in_width then
    invalid_arg "Conv.out_dims: kernel larger than image";
  if spec.stride < 1 then invalid_arg "Conv.out_dims: stride";
  ( ((spec.in_height - spec.kernel) / spec.stride) + 1,
    ((spec.in_width - spec.kernel) / spec.stride) + 1 )

(** [output_size spec] is the flattened output dimension. *)
let output_size spec =
  let oh, ow = out_dims spec in
  oh * ow * spec.out_channels

(** [to_layer spec ~kernels ~bias ~act] lowers the convolution to a
    dense layer. [kernels.(c)] is channel [c]'s kernel as a
    [kernel × kernel] row-major array; [bias.(c)] is per-channel. *)
let to_layer spec ~kernels ~bias ~act =
  if Array.length kernels <> spec.out_channels then
    invalid_arg "Conv.to_layer: kernel count";
  if Array.length bias <> spec.out_channels then
    invalid_arg "Conv.to_layer: bias count";
  Array.iter
    (fun k ->
      if Array.length k <> spec.kernel * spec.kernel then
        invalid_arg "Conv.to_layer: kernel size")
    kernels;
  let oh, ow = out_dims spec in
  let out_dim = oh * ow * spec.out_channels in
  let in_dim = spec.in_height * spec.in_width in
  let w = Cv_linalg.Mat.zeros out_dim in_dim in
  let b = Array.make out_dim 0. in
  for c = 0 to spec.out_channels - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let row = (c * oh * ow) + (oy * ow) + ox in
        b.(row) <- bias.(c);
        for ky = 0 to spec.kernel - 1 do
          for kx = 0 to spec.kernel - 1 do
            let iy = (oy * spec.stride) + ky in
            let ix = (ox * spec.stride) + kx in
            Cv_linalg.Mat.set w row
              ((iy * spec.in_width) + ix)
              kernels.(c).((ky * spec.kernel) + kx)
          done
        done
      done
    done
  done;
  Layer.make w b act

(** [random ?rng spec ~act] draws Glorot-scaled random kernels — the
    frozen random extractor used as the conv stand-in. *)
let random ?rng spec ~act =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 29 in
  let fan = float_of_int (spec.kernel * spec.kernel) in
  let limit = sqrt (3. /. fan) in
  let kernels =
    Array.init spec.out_channels (fun _ ->
        Cv_util.Rng.uniform_array rng (spec.kernel * spec.kernel) ~lo:(-.limit)
          ~hi:limit)
  in
  let bias =
    Array.init spec.out_channels (fun _ -> Cv_util.Rng.float rng ~lo:0. ~hi:0.05)
  in
  to_layer spec ~kernels ~bias ~act

(** [eval_direct spec ~kernels ~bias ~act img] computes the convolution
    without materialising the matrix — reference implementation used by
    the tests to validate {!to_layer}. *)
let eval_direct spec ~kernels ~bias ~act img =
  if Array.length img <> spec.in_height * spec.in_width then
    invalid_arg "Conv.eval_direct: image size";
  let oh, ow = out_dims spec in
  let out = Array.make (oh * ow * spec.out_channels) 0. in
  for c = 0 to spec.out_channels - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref bias.(c) in
        for ky = 0 to spec.kernel - 1 do
          for kx = 0 to spec.kernel - 1 do
            let iy = (oy * spec.stride) + ky in
            let ix = (ox * spec.stride) + kx in
            acc :=
              !acc
              +. (kernels.(c).((ky * spec.kernel) + kx)
                 *. img.((iy * spec.in_width) + ix))
          done
        done;
        out.((c * oh * ow) + (oy * ow) + ox) <- Activation.apply act !acc
      done
    done
  done;
  out
