(** SGD training and fine-tuning for the regression networks of the
    experiment.

    The paper's continuous-engineering loop produces model variants by
    fine-tuning — continuing training from the previous parameters with a
    very small learning rate (it cites 1e-3). We implement full
    backpropagation for MSE regression so the fine-tuned networks in the
    benchmark are genuine training artifacts rather than random
    perturbations. *)

type sample = { input : Cv_linalg.Vec.t; target : Cv_linalg.Vec.t }

type config = {
  learning_rate : float;
  epochs : int;
  batch_size : int;
  seed : int;
  clip_grad : float option;  (** max-abs gradient clip, [None] = off *)
}

(** Sensible defaults for initial training. *)
let default_config =
  { learning_rate = 1e-2; epochs = 50; batch_size = 16; seed = 42; clip_grad = Some 5. }

(** Fine-tuning defaults: the paper's small-learning-rate continuation. *)
let fine_tune_config =
  { default_config with learning_rate = 1e-3; epochs = 5 }

type gradients = {
  d_weights : Cv_linalg.Mat.t array;
  d_bias : Cv_linalg.Vec.t array;
}

(* Forward pass retaining pre-activations and activations per layer, as
   needed by backprop. *)
let forward_full net x =
  let layers = Network.layers net in
  let n = Array.length layers in
  let pre = Array.make n [||] in
  let post = Array.make n [||] in
  let acc = ref x in
  for i = 0 to n - 1 do
    let z = Layer.pre_activation layers.(i) !acc in
    pre.(i) <- z;
    post.(i) <- Activation.apply_vec layers.(i).Layer.act z;
    acc := post.(i)
  done;
  (pre, post)

(** [backprop net sample] computes MSE-loss gradients for one sample:
    loss = ‖f(x) − y‖² / 2. Returns the per-layer gradients and the
    sample loss. *)
let backprop net sample =
  let layers = Network.layers net in
  let n = Array.length layers in
  let pre, post = forward_full net sample.input in
  let output = post.(n - 1) in
  if Array.length output <> Array.length sample.target then
    invalid_arg "Train.backprop: target dimension mismatch";
  let err = Cv_linalg.Vec.sub output sample.target in
  let loss = 0.5 *. Cv_linalg.Vec.dot err err in
  let d_weights = Array.make n (Cv_linalg.Mat.zeros 0 0) in
  let d_bias = Array.make n [||] in
  (* delta holds dL/dz for the current layer, walking backwards. *)
  let delta = ref [||] in
  for i = n - 1 downto 0 do
    let l = layers.(i) in
    let act_grad = Array.map (Activation.derivative l.Layer.act) pre.(i) in
    let upstream =
      if i = n - 1 then err
      else
        (* dL/da_i = W_{i+1}ᵀ delta_{i+1} *)
        Cv_linalg.Mat.matvec (Cv_linalg.Mat.transpose layers.(i + 1).Layer.weights) !delta
    in
    let d = Cv_linalg.Vec.mul upstream act_grad in
    delta := d;
    let input_i = if i = 0 then sample.input else post.(i - 1) in
    d_weights.(i) <-
      Cv_linalg.Mat.init (Array.length d) (Array.length input_i) (fun r c ->
          d.(r) *. input_i.(c));
    d_bias.(i) <- Array.copy d
  done;
  ({ d_weights; d_bias }, loss)

let clip limit g =
  match limit with
  | None -> g
  | Some m ->
    { d_weights =
        Array.map
          (Cv_linalg.Mat.map (Cv_util.Float_utils.clamp ~lo:(-.m) ~hi:m))
          g.d_weights;
      d_bias =
        Array.map
          (Array.map (Cv_util.Float_utils.clamp ~lo:(-.m) ~hi:m))
          g.d_bias }

let apply_gradients net ~lr grads =
  Network.make
    (Array.mapi
       (fun i (l : Layer.t) ->
         Layer.make
           (Cv_linalg.Mat.sub l.Layer.weights
              (Cv_linalg.Mat.scale lr grads.d_weights.(i)))
           (Cv_linalg.Vec.sub l.Layer.bias
              (Cv_linalg.Vec.scale lr grads.d_bias.(i)))
           l.Layer.act)
       (Network.layers net))

let sum_gradients a b =
  { d_weights = Array.map2 Cv_linalg.Mat.add a.d_weights b.d_weights;
    d_bias = Array.map2 Cv_linalg.Vec.add a.d_bias b.d_bias }

let scale_gradients c g =
  { d_weights = Array.map (Cv_linalg.Mat.scale c) g.d_weights;
    d_bias = Array.map (Cv_linalg.Vec.scale c) g.d_bias }

(** [loss net samples] is the mean MSE loss over the dataset. *)
let loss net samples =
  match samples with
  | [] -> 0.
  | _ ->
    let total =
      List.fold_left
        (fun acc s ->
          let err = Cv_linalg.Vec.sub (Network.eval net s.input) s.target in
          acc +. (0.5 *. Cv_linalg.Vec.dot err err))
        0. samples
    in
    total /. float_of_int (List.length samples)

(** [fit ?config net samples] trains [net] by mini-batch SGD and returns
    the trained network together with the per-epoch training losses. *)
let fit ?(config = default_config) net samples =
  let rng = Cv_util.Rng.create config.seed in
  let data = Array.of_list samples in
  let n = Array.length data in
  let net = ref net in
  let history = ref [] in
  for _epoch = 1 to if n = 0 then 0 else config.epochs do
    Cv_util.Rng.shuffle rng data;
    let i = ref 0 in
    while !i < n do
      let batch_end = min n (!i + config.batch_size) in
      let batch_n = batch_end - !i in
      let grads = ref None in
      for k = !i to batch_end - 1 do
        let g, _ = backprop !net data.(k) in
        grads := Some (match !grads with None -> g | Some acc -> sum_gradients acc g)
      done;
      (match !grads with
      | None -> ()
      | Some g ->
        let g = scale_gradients (1. /. float_of_int batch_n) g in
        let g = clip config.clip_grad g in
        net := apply_gradients !net ~lr:config.learning_rate g);
      i := batch_end
    done;
    history := loss !net samples :: !history
  done;
  (!net, List.rev !history)

(** [fine_tune ?config net samples] continues training with the paper's
    small learning rate; the result is the [f'] of an SVbTV instance. *)
let fine_tune ?(config = fine_tune_config) net samples = fit ~config net samples
