(** 2-D convolution lowered to dense layers — the frozen conv stack of
    the paper's perception network, represented as a plain affine layer
    so every analysis in the repo applies unchanged. *)

type spec = {
  in_height : int;
  in_width : int;
  kernel : int;  (** square kernel side *)
  stride : int;
  out_channels : int;
}

(** [out_dims spec] is [(out_height, out_width)]. *)
val out_dims : spec -> int * int

(** [output_size spec] is the flattened output dimension. *)
val output_size : spec -> int

(** [to_layer spec ~kernels ~bias ~act] lowers the convolution to a
    dense layer; [kernels.(c)] is channel [c]'s row-major
    [kernel × kernel] array. *)
val to_layer :
  spec ->
  kernels:float array array ->
  bias:float array ->
  act:Activation.t ->
  Layer.t

(** [random ?rng spec ~act] draws Glorot-scaled random kernels — the
    frozen random extractor. *)
val random : ?rng:Cv_util.Rng.t -> spec -> act:Activation.t -> Layer.t

(** [eval_direct spec ~kernels ~bias ~act img] computes the convolution
    without materialising the matrix — the reference implementation used
    by tests to validate {!to_layer}. *)
val eval_direct :
  spec ->
  kernels:float array array ->
  bias:float array ->
  act:Activation.t ->
  float array ->
  float array
