(** Human-readable network summaries (the paper's Figure 4 is an
    architecture diagram of the verified head; the bench regenerates it
    as this table). *)

(** [layer_table net] renders one line per layer:
    index, shape, activation, parameter count. *)
let layer_table net =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-6s %-14s %-16s %10s\n" "layer" "shape" "activation" "params");
  Array.iteri
    (fun i (l : Layer.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%-6d %-14s %-16s %10d\n" (i + 1)
           (Printf.sprintf "%d -> %d" (Layer.in_dim l) (Layer.out_dim l))
           (Activation.to_string l.Layer.act)
           (Layer.num_params l)))
    (Network.layers net);
  Buffer.add_string buf
    (Printf.sprintf "total: %d layers, %d neurons, %d parameters\n"
       (Network.num_layers net) (Network.num_neurons net)
       (Network.num_params net));
  Buffer.contents buf

(** [shape_string net] is e.g. ["[8; 16; 16; 1]"]. *)
let shape_string net =
  "["
  ^ String.concat "; " (List.map string_of_int (Network.layer_dims net))
  ^ "]"
