(** Model persistence: networks to/from JSON files (the library's own
    format; see {!Nnet} for the community interchange format). *)

(** Current format version; readers reject unknown versions. *)
val format_version : int

(** [network_to_json ?name net] wraps {!Network.to_json} with
    metadata. *)
val network_to_json : ?name:string -> Network.t -> Cv_util.Json.t

(** [network_of_json j] reads a document written by {!network_to_json};
    raises {!Cv_util.Json.Error} on format/version mismatch. *)
val network_of_json : Cv_util.Json.t -> Network.t

(** [save_network ?name path net] writes the model file at [path]. *)
val save_network : ?name:string -> string -> Network.t -> unit

(** [load_network path] reads a model file written by
    {!save_network}. *)
val load_network : string -> Network.t

(** [roundtrip net] is [network_of_json (network_to_json net)]. *)
val roundtrip : Network.t -> Network.t
