(** One fully-connected layer: [x ↦ act (W x + b)] — the paper's
    [g_k]. *)

type t = {
  weights : Cv_linalg.Mat.t;  (** [out_dim × in_dim] *)
  bias : Cv_linalg.Vec.t;  (** [out_dim] *)
  act : Activation.t;
}

(** [make weights bias act] validates shapes and builds a layer. *)
val make : Cv_linalg.Mat.t -> Cv_linalg.Vec.t -> Activation.t -> t

val in_dim : t -> int

val out_dim : t -> int

(** [num_params l] counts weights plus biases. *)
val num_params : t -> int

(** [pre_activation l x] is [W x + b] (the neuron values the MILP
    encoder constrains). *)
val pre_activation : t -> Cv_linalg.Vec.t -> Cv_linalg.Vec.t

(** [eval l x] is the layer output [act (W x + b)]. *)
val eval : t -> Cv_linalg.Vec.t -> Cv_linalg.Vec.t

(** [random ?rng ~in_dim ~out_dim act] draws a Glorot-initialised
    layer. *)
val random : ?rng:Cv_util.Rng.t -> in_dim:int -> out_dim:int -> Activation.t -> t

(** [perturb ?rng ~sigma l] adds iid Gaussian noise to every parameter —
    a crude fine-tuning stand-in used by tests. *)
val perturb : ?rng:Cv_util.Rng.t -> sigma:float -> t -> t

(** [param_dist_inf a b] is the max absolute parameter difference
    between two same-shaped layers. *)
val param_dist_inf : t -> t -> float

val to_json : t -> Cv_util.Json.t

val of_json : Cv_util.Json.t -> t
