(** The .nnet interchange format (Stanford/Reluplex community standard,
    used by ACAS-Xu and most NN-verification benchmarks): loading gives
    a ready {!Network} plus the declared input box. *)

type t = {
  network : Network.t;
  input_box : Cv_interval.Box.t;  (** declared input mins/maxes *)
  means : float array;  (** per-input means, last entry = output mean *)
  ranges : float array;  (** per-input ranges, last entry = output range *)
}

exception Parse_error of string

(** [parse contents] reads a .nnet document from a string. *)
val parse : string -> t

(** [load path] reads a .nnet file. *)
val load : string -> t

(** [to_string ?comment t] renders the .nnet document. *)
val to_string : ?comment:string -> t -> string

(** [save ?comment path t] writes the .nnet file. *)
val save : ?comment:string -> string -> t -> unit

(** [of_network ?input_box net] wraps a ReLU-hidden / linear-output
    network with unit normalisation; the input box defaults to
    [[0,1]^d]. *)
val of_network : ?input_box:Cv_interval.Box.t -> Network.t -> t
