(** The .nnet interchange format (Stanford/Reluplex community standard,
    used by ACAS-Xu and most NN-verification benchmarks).

    Supported: the full textual format — comment header, layer sizes,
    input bounds, normalisation means/ranges, then per layer the weight
    rows and biases. Hidden layers are ReLU, the output layer linear,
    exactly this library's verified-head shape; loading therefore gives
    a ready {!Network} plus the declared input box, so external
    benchmark networks can be dropped straight into the verification
    pipeline. *)

type t = {
  network : Network.t;
  input_box : Cv_interval.Box.t;  (** declared input mins/maxes *)
  means : float array;  (** per-input means, last entry = output mean *)
  ranges : float array;  (** per-input ranges, last entry = output range *)
}

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let split_csv line =
  String.split_on_char ',' line
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let floats_of_line line =
  List.map
    (fun s ->
      match float_of_string_opt s with
      | Some f -> f
      | None -> parse_error "bad number %S" s)
    (split_csv line)

(** [parse contents] reads a .nnet document from a string. *)
let parse contents =
  let lines =
    String.split_on_char '\n' contents
    |> List.map String.trim
    |> List.filter (fun l ->
           l <> "" && not (String.length l >= 2 && String.sub l 0 2 = "//"))
  in
  let next = ref lines in
  let take what =
    match !next with
    | [] -> parse_error "unexpected end of file (expecting %s)" what
    | l :: rest ->
      next := rest;
      l
  in
  let header = floats_of_line (take "header") in
  let num_layers, input_size, output_size =
    match header with
    | nl :: is :: os :: _ -> (int_of_float nl, int_of_float is, int_of_float os)
    | _ -> parse_error "bad header"
  in
  let sizes = List.map int_of_float (floats_of_line (take "layer sizes")) in
  if List.length sizes <> num_layers + 1 then
    parse_error "expected %d layer sizes, got %d" (num_layers + 1)
      (List.length sizes);
  if List.hd sizes <> input_size then parse_error "input size mismatch";
  if List.nth sizes num_layers <> output_size then
    parse_error "output size mismatch";
  let _flag = take "flag" in
  let mins = Array.of_list (floats_of_line (take "input minimums")) in
  let maxes = Array.of_list (floats_of_line (take "input maximums")) in
  if Array.length mins <> input_size || Array.length maxes <> input_size then
    parse_error "input bound count mismatch";
  let means = Array.of_list (floats_of_line (take "means")) in
  let ranges = Array.of_list (floats_of_line (take "ranges")) in
  if Array.length means <> input_size + 1 || Array.length ranges <> input_size + 1
  then parse_error "normalisation count mismatch";
  let layers =
    List.init num_layers (fun li ->
        let rows = List.nth sizes (li + 1) in
        let cols = List.nth sizes li in
        let w =
          Cv_linalg.Mat.of_rows
            (List.init rows (fun r ->
                 let vals = Array.of_list (floats_of_line (take "weight row")) in
                 if Array.length vals <> cols then
                   parse_error "layer %d row %d: expected %d weights, got %d" li
                     r cols (Array.length vals);
                 vals))
        in
        let b =
          Array.init rows (fun _ ->
              match floats_of_line (take "bias") with
              | [ v ] -> v
              | _ -> parse_error "expected one bias per line")
        in
        let act =
          if li = num_layers - 1 then Activation.Identity else Activation.Relu
        in
        Layer.make w b act)
  in
  { network = Network.of_list layers;
    input_box = Cv_interval.Box.of_bounds mins maxes;
    means;
    ranges }

(** [load path] reads a .nnet file. *)
let load path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents

let csv xs =
  String.concat "," (List.map (Printf.sprintf "%.17g") (Array.to_list xs))

(** [to_string ?comment t] renders the .nnet document. *)
let to_string ?(comment = "written by contiver") t =
  let buf = Buffer.create 4096 in
  let net = t.network in
  let n = Network.num_layers net in
  let sizes = Network.layer_dims net in
  Buffer.add_string buf ("// " ^ comment ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%d,%d,%d,%d,\n" n (Network.in_dim net) (Network.out_dim net)
       (List.fold_left max 0 sizes));
  Buffer.add_string buf
    (String.concat "," (List.map string_of_int sizes) ^ ",\n");
  Buffer.add_string buf "0,\n";
  Buffer.add_string buf (csv (Cv_interval.Box.lower t.input_box) ^ ",\n");
  Buffer.add_string buf (csv (Cv_interval.Box.upper t.input_box) ^ ",\n");
  Buffer.add_string buf (csv t.means ^ ",\n");
  Buffer.add_string buf (csv t.ranges ^ ",\n");
  Array.iter
    (fun (l : Layer.t) ->
      for r = 0 to Layer.out_dim l - 1 do
        Buffer.add_string buf (csv (Cv_linalg.Mat.row l.Layer.weights r) ^ ",\n")
      done;
      Array.iter
        (fun b -> Buffer.add_string buf (Printf.sprintf "%.17g,\n" b))
        l.Layer.bias)
    (Network.layers net);
  Buffer.contents buf

(** [save ?comment path t] writes the .nnet file. *)
let save ?comment path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?comment t))

(** [of_network ?input_box net] wraps a network with default (unit)
    normalisation; the input box defaults to [[0,1]^d]. Only
    ReLU-hidden / linear-output networks are representable. *)
let of_network ?input_box net =
  let n = Network.num_layers net in
  Array.iteri
    (fun i (l : Layer.t) ->
      match (l.Layer.act, i = n - 1) with
      | Activation.Relu, false | Activation.Identity, true -> ()
      | act, _ ->
        invalid_arg
          (Printf.sprintf "Nnet.of_network: unsupported activation %s"
             (Activation.to_string act)))
    (Network.layers net);
  let d = Network.in_dim net in
  let input_box =
    match input_box with
    | Some b -> b
    | None -> Cv_interval.Box.uniform d ~lo:0. ~hi:1.
  in
  { network = net;
    input_box;
    means = Array.make (d + 1) 0.;
    ranges = Array.make (d + 1) 1. }
