(** One fully-connected layer: [x ↦ act (W x + b)].

    In the paper's notation this is one [g_k]; a network is the
    composition [g_n ⊗ … ⊗ g_1]. *)

type t = {
  weights : Cv_linalg.Mat.t;  (** [out_dim × in_dim] *)
  bias : Cv_linalg.Vec.t;  (** [out_dim] *)
  act : Activation.t;
}

(** [make weights bias act] validates shapes and builds a layer. *)
let make weights bias act =
  if Cv_linalg.Mat.rows weights <> Cv_linalg.Vec.dim bias then
    invalid_arg "Layer.make: bias dimension mismatch";
  { weights; bias; act }

(** [in_dim l] is the input dimension. *)
let in_dim l = Cv_linalg.Mat.cols l.weights

(** [out_dim l] is the output dimension. *)
let out_dim l = Cv_linalg.Mat.rows l.weights

(** [num_params l] counts weights plus biases. *)
let num_params l = (in_dim l * out_dim l) + out_dim l

(** [pre_activation l x] is [W x + b] (the neuron values before the
    nonlinearity — what the MILP encoder constrains). *)
let pre_activation l x = Cv_linalg.Mat.matvec_add l.weights x l.bias

(** [eval l x] is the layer output [act (W x + b)]. *)
let eval l x = Activation.apply_vec l.act (pre_activation l x)

(** [random ?rng ~in_dim ~out_dim act] draws a Glorot-initialised
    layer. *)
let random ?rng ~in_dim ~out_dim act =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 17 in
  let weights = Cv_linalg.Mat.xavier ~rng out_dim in_dim in
  let bias = Cv_util.Rng.uniform_array rng out_dim ~lo:(-0.1) ~hi:0.1 in
  { weights; bias; act }

(** [perturb ?rng ~sigma l] adds iid Gaussian noise to every parameter —
    a crude stand-in for fine-tuning used in tests (real fine-tuning goes
    through {!Train.fine_tune}). *)
let perturb ?rng ~sigma l =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 19 in
  let weights =
    Cv_linalg.Mat.map (fun w -> w +. Cv_util.Rng.gaussian rng ~mu:0. ~sigma) l.weights
  in
  let bias = Array.map (fun b -> b +. Cv_util.Rng.gaussian rng ~mu:0. ~sigma) l.bias in
  { l with weights; bias }

(** [param_dist_inf a b] is the max absolute parameter difference between
    two same-shaped layers. *)
let param_dist_inf a b =
  if in_dim a <> in_dim b || out_dim a <> out_dim b then
    invalid_arg "Layer.param_dist_inf: shape mismatch";
  let dw = Cv_linalg.Mat.max_abs (Cv_linalg.Mat.sub a.weights b.weights) in
  let db = Cv_util.Float_utils.max_abs (Cv_linalg.Vec.sub a.bias b.bias) in
  Float.max dw db

(** [to_json l] encodes the layer. *)
let to_json l =
  Cv_util.Json.Obj
    [ ("weights", Cv_linalg.Mat.to_json l.weights);
      ("bias", Cv_util.Json.of_float_array l.bias);
      ("act", Activation.to_json l.act) ]

(** [of_json j] decodes a layer written by {!to_json}. *)
let of_json j =
  let open Cv_util.Json in
  make
    (Cv_linalg.Mat.of_json (member "weights" j))
    (float_array (member "bias" j))
    (Activation.of_json (member "act" j))
