lib/nn/network.mli: Activation Cv_linalg Cv_util Layer
