lib/nn/train.ml: Activation Array Cv_linalg Cv_util Layer List Network
