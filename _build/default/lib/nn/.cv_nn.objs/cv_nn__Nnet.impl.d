lib/nn/nnet.ml: Activation Array Buffer Cv_interval Cv_linalg Fun Layer List Network Printf String
