lib/nn/activation.ml: Array Cv_interval Cv_util Float Printf
