lib/nn/activation.mli: Cv_interval Cv_util
