lib/nn/conv.mli: Activation Cv_util Layer
