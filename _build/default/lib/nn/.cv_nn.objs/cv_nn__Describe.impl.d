lib/nn/describe.ml: Activation Array Buffer Layer List Network Printf String
