lib/nn/serialize.mli: Cv_util Network
