lib/nn/layer.mli: Activation Cv_linalg Cv_util
