lib/nn/train.mli: Cv_linalg Network
