lib/nn/nnet.mli: Cv_interval Network
