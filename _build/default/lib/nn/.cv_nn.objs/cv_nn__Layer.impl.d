lib/nn/layer.ml: Activation Array Cv_linalg Cv_util Float
