lib/nn/network.ml: Activation Array Cv_util Float Layer List Printf
