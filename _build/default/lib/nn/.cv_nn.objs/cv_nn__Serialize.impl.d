lib/nn/serialize.ml: Cv_util Fun Network
