lib/nn/conv.ml: Activation Array Cv_linalg Cv_util Layer
