lib/nn/describe.mli: Network
