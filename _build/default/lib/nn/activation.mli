(** Activation functions of the feed-forward networks under
    verification. *)

type t =
  | Relu
  | Leaky_relu of float  (** negative-side slope, expected in [[0, 1]] *)
  | Sigmoid
  | Tanh
  | Identity

(** [apply act x] evaluates the activation on a scalar. *)
val apply : t -> float -> float

(** [apply_vec act v] maps {!apply} over a vector. *)
val apply_vec : t -> float array -> float array

(** [derivative act x] is the (sub)derivative used by backprop (0 at the
    ReLU kink). *)
val derivative : t -> float -> float

(** [lipschitz act] is a tight global Lipschitz constant of the scalar
    activation. *)
val lipschitz : t -> float

(** [is_piecewise_linear act] is true for activations that admit an
    exact MILP encoding. *)
val is_piecewise_linear : t -> bool

(** [is_monotone act] — all supported activations are monotone
    nondecreasing. *)
val is_monotone : t -> bool

(** [interval act iv] is the exact image of an interval under the
    (monotone) activation. *)
val interval : t -> Cv_interval.Interval.t -> Cv_interval.Interval.t

val to_string : t -> string

val to_json : t -> Cv_util.Json.t

val of_json : Cv_util.Json.t -> t
