(** SGD training and fine-tuning for regression networks.

    Full backpropagation for MSE loss, so the fine-tuned networks of the
    benchmark are genuine training artifacts (the paper's
    continue-training-at-small-learning-rate setting, lr 1e-3). *)

type sample = { input : Cv_linalg.Vec.t; target : Cv_linalg.Vec.t }

type config = {
  learning_rate : float;
  epochs : int;
  batch_size : int;
  seed : int;
  clip_grad : float option;  (** max-abs gradient clip, [None] = off *)
}

(** Sensible defaults for initial training. *)
val default_config : config

(** Fine-tuning defaults: the paper's small-learning-rate
    continuation. *)
val fine_tune_config : config

type gradients = {
  d_weights : Cv_linalg.Mat.t array;
  d_bias : Cv_linalg.Vec.t array;
}

(** [backprop net sample] computes MSE-loss gradients for one sample and
    returns them with the sample loss. *)
val backprop : Network.t -> sample -> gradients * float

(** [loss net samples] is the mean MSE loss over the dataset. *)
val loss : Network.t -> sample list -> float

(** [fit ?config net samples] trains by mini-batch SGD; returns the
    trained network and per-epoch training losses. *)
val fit : ?config:config -> Network.t -> sample list -> Network.t * float list

(** [fine_tune ?config net samples] continues training with the small
    learning rate; the result is the [f'] of an SVbTV instance. *)
val fine_tune :
  ?config:config -> Network.t -> sample list -> Network.t * float list
