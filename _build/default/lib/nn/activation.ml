(** Activation functions of the feed-forward networks under
    verification.

    The paper's networks use ReLU (the verified head) with Leaky ReLU and
    sigmoid mentioned as supported nonlinearities; we implement all of
    them plus [Identity] (the final linear layer producing [v_out]) and
    [Tanh] for completeness of the training substrate. *)

type t =
  | Relu
  | Leaky_relu of float  (** negative-side slope, expected in [[0, 1]] *)
  | Sigmoid
  | Tanh
  | Identity

(** [apply act x] evaluates the activation on a scalar. *)
let apply act x =
  match act with
  | Relu -> if x > 0. then x else 0.
  | Leaky_relu slope -> if x > 0. then x else slope *. x
  | Sigmoid -> 1. /. (1. +. exp (-.x))
  | Tanh -> tanh x
  | Identity -> x

(** [apply_vec act v] maps {!apply} over a vector. *)
let apply_vec act v = Array.map (apply act) v

(** [derivative act x] is the (sub)derivative used by backprop; at the
    ReLU kink we use 0, the standard convention. *)
let derivative act x =
  match act with
  | Relu -> if x > 0. then 1. else 0.
  | Leaky_relu slope -> if x > 0. then 1. else slope
  | Sigmoid ->
    let s = 1. /. (1. +. exp (-.x)) in
    s *. (1. -. s)
  | Tanh ->
    let t = tanh x in
    1. -. (t *. t)
  | Identity -> 1.

(** [lipschitz act] is a (tight) global Lipschitz constant of the scalar
    activation — the factor contributed per layer by the operator-norm
    product bound. *)
let lipschitz = function
  | Relu -> 1.
  | Leaky_relu slope -> Float.max 1. (Float.abs slope)
  | Sigmoid -> 0.25
  | Tanh -> 1.
  | Identity -> 1.

(** [is_piecewise_linear act] is true for activations that admit an exact
    MILP encoding (big-M); sigmoid/tanh do not. *)
let is_piecewise_linear = function
  | Relu | Leaky_relu _ | Identity -> true
  | Sigmoid | Tanh -> false

(** [is_monotone act] — all our activations are monotone nondecreasing,
    which the interval transformer exploits. *)
let is_monotone = function Relu | Leaky_relu _ | Sigmoid | Tanh | Identity -> true

(** [interval act iv] is the exact image of an interval under the
    (monotone) activation. *)
let interval act iv =
  match act with
  | Relu -> Cv_interval.Interval.relu iv
  | Leaky_relu slope -> Cv_interval.Interval.leaky_relu slope iv
  | Sigmoid | Tanh | Identity -> Cv_interval.Interval.monotone_image (apply act) iv

(** [to_string act] is a short printable name. *)
let to_string = function
  | Relu -> "relu"
  | Leaky_relu slope -> Printf.sprintf "leaky_relu(%g)" slope
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Identity -> "identity"

(** [to_json act] encodes the activation. *)
let to_json act =
  let open Cv_util.Json in
  match act with
  | Relu -> Str "relu"
  | Leaky_relu slope -> Obj [ ("leaky_relu", Num slope) ]
  | Sigmoid -> Str "sigmoid"
  | Tanh -> Str "tanh"
  | Identity -> Str "identity"

(** [of_json j] decodes an activation written by {!to_json}. *)
let of_json j =
  let open Cv_util.Json in
  match j with
  | Str "relu" -> Relu
  | Str "sigmoid" -> Sigmoid
  | Str "tanh" -> Tanh
  | Str "identity" -> Identity
  | Obj [ ("leaky_relu", Num slope) ] -> Leaky_relu slope
  | _ -> raise (Error "Activation.of_json")
