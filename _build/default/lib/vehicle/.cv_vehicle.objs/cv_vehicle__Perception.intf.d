lib/vehicle/perception.mli: Camera Cv_linalg Cv_nn Cv_util Track
