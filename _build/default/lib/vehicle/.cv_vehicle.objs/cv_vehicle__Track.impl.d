lib/vehicle/track.ml: Array Buffer Cv_util Float List
