lib/vehicle/controller.mli: Camera Cv_linalg Cv_monitor Cv_util Perception Track
