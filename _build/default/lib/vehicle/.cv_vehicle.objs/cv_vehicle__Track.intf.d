lib/vehicle/track.mli:
