lib/vehicle/pipeline.ml: Array Camera Controller Cv_domains Cv_interval Cv_monitor Cv_nn Cv_util Cv_verify Dataset List Perception Track
