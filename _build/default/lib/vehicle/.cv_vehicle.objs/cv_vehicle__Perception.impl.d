lib/vehicle/perception.ml: Array Camera Cv_nn Cv_util Float Track
