lib/vehicle/pipeline.mli: Cv_interval Cv_nn Cv_verify Perception Track
