lib/vehicle/controller.ml: Camera Cv_linalg Cv_monitor Cv_util Float List Perception Track
