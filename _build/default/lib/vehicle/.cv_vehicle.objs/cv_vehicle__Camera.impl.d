lib/vehicle/camera.ml: Array Buffer Cv_util Float String Track
