lib/vehicle/dataset.mli: Camera Cv_linalg Cv_nn Cv_util Perception Track
