lib/vehicle/dataset.ml: Array Camera Cv_linalg Cv_nn Cv_util List Perception Track
