lib/vehicle/camera.mli: Cv_util Track
