(** Synthetic forward-facing camera.

    Substitutes the paper's 224×224 RGB camera with a low-resolution
    grayscale ground-projection: each image row corresponds to a ground
    distance ahead of the vehicle (closer at the bottom), and the lane
    centerline paints a bright ridge at the column where the track sits
    at that distance. Environment conditions (brightness offset, noise)
    are explicit so that a deployment-time condition shift produces
    genuine out-of-distribution feature values — the paper's "black
    swan" trigger for domain enlargement. *)

type config = {
  width : int;
  height : int;
  fov : float;  (** horizontal field of view in radians *)
  near : float;  (** ground distance of the bottom row *)
  far : float;  (** ground distance of the top row *)
  lane_sigma : float;  (** ridge thickness as a fraction of image width *)
}

(** Defaults sized so the verified head stays solver-friendly. *)
let default_config =
  { width = 12; height = 8; fov = 1.2; near = 0.4; far = 3.0; lane_sigma = 0.09 }

(** Operating conditions; shifting these simulates lighting/weather
    changes between data collection and deployment. *)
type conditions = {
  brightness : float;  (** additive offset on all pixels *)
  contrast : float;  (** multiplicative gain *)
  noise : float;  (** iid Gaussian pixel noise σ *)
}

(** The nominal (data-collection) conditions. *)
let nominal = { brightness = 0.; contrast = 1.; noise = 0.02 }

(** [shifted] conditions: slightly brighter, higher-gain, noisier — the
    deployment-time shift used to provoke occasional OOD events (black
    swans, not a wholesale distribution change). *)
let shifted = { brightness = 0.05; contrast = 1.04; noise = 0.032 }

(** [pixels cfg] is the flattened image dimension. *)
let pixels cfg = cfg.width * cfg.height

(* Ground point at distance d ahead and lateral offset l (vehicle
   frame) mapped to an image column in [0, width). *)
let column_of cfg ~distance ~lateral =
  let angle = Float.atan2 lateral distance in
  let normalized = (angle /. (cfg.fov /. 2.)) +. 1. in
  normalized /. 2. *. float_of_int (cfg.width - 1)

(** [capture ?rng cfg cond track pose] renders the flattened grayscale
    image (row-major, bottom row first) seen from [pose]. *)
let capture ?rng cfg cond track (pose : Track.pose) =
  let img = Array.make (pixels cfg) 0. in
  let s0 = Track.nearest_s track pose in
  for r = 0 to cfg.height - 1 do
    let t = float_of_int r /. float_of_int (max 1 (cfg.height - 1)) in
    let distance = Cv_util.Float_utils.lerp cfg.near cfg.far t in
    (* Track centerline point at arc length ahead; its position in the
       vehicle frame decides the bright column. *)
    let target = Track.point_at track (s0 +. distance) in
    let dx = target.Track.x -. pose.Track.px
    and dy = target.Track.y -. pose.Track.py in
    let forward = (dx *. cos pose.Track.yaw) +. (dy *. sin pose.Track.yaw) in
    let lateral = (-.dx *. sin pose.Track.yaw) +. (dy *. cos pose.Track.yaw) in
    if forward > 0.05 then begin
      let center_col = column_of cfg ~distance:forward ~lateral in
      let sigma = cfg.lane_sigma *. float_of_int cfg.width in
      for c = 0 to cfg.width - 1 do
        let d = (float_of_int c -. center_col) /. sigma in
        let v = exp (-0.5 *. d *. d) in
        img.((r * cfg.width) + c) <- img.((r * cfg.width) + c) +. v
      done
    end
  done;
  (* Apply conditions. *)
  Array.mapi
    (fun _ v ->
      let v = (v *. cond.contrast) +. cond.brightness in
      let v =
        match rng with
        | Some rng -> v +. Cv_util.Rng.gaussian rng ~mu:0. ~sigma:cond.noise
        | None -> v
      in
      Cv_util.Float_utils.clamp ~lo:0. ~hi:1.5 v)
    img

(** [ascii cfg img] renders the image with intensity characters —
    debugging aid for the examples. *)
let ascii cfg img =
  let ramp = " .:-=+*#%@" in
  let buf = Buffer.create (pixels cfg + cfg.height) in
  for r = cfg.height - 1 downto 0 do
    for c = 0 to cfg.width - 1 do
      let v = Cv_util.Float_utils.clamp ~lo:0. ~hi:0.999 img.((r * cfg.width) + c) in
      Buffer.add_char buf ramp.[int_of_float (v *. float_of_int (String.length ramp))]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
