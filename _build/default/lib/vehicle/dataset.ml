(** Labelled data generation on the race track.

    Stand-in for the paper's "manually labeled data set collected on the
    race track": poses are sampled along the track with lateral and
    heading jitter, images rendered under given conditions, labels
    computed from the geometric lookahead waypoint. *)

type sample = {
  pose : Track.pose;
  image : Cv_linalg.Vec.t;
  features : Cv_linalg.Vec.t;  (** frozen-extractor output *)
  label : float;  (** ground-truth v_out *)
}

(** [generate ?conditions ~rng ~track ~perception n] draws [n] labelled
    samples. *)
let generate ?(conditions = Camera.nominal) ~rng ~track ~perception n =
  List.init n (fun _ ->
      let s = Cv_util.Rng.float rng ~lo:0. ~hi:track.Track.length in
      let lateral =
        Cv_util.Rng.float rng ~lo:(-0.8 *. track.Track.half_width)
          ~hi:(0.8 *. track.Track.half_width)
      in
      let heading_err = Cv_util.Rng.float rng ~lo:(-0.3) ~hi:0.3 in
      let pose = Track.pose_at ~lateral ~heading_err track s in
      let image =
        Camera.capture ~rng perception.Perception.camera conditions track pose
      in
      let features = Perception.features_of perception image in
      let label = Perception.steering_label track pose in
      { pose; image; features; label })

(** [to_training samples] converts to the head-training format
    (feature vector → 1-dim target). *)
let to_training samples =
  List.map
    (fun s ->
      { Cv_nn.Train.input = s.features; Cv_nn.Train.target = [| s.label |] })
    samples

(** [head_mse perception samples] is the head's prediction error on a
    dataset — training progress metric for the examples. *)
let head_mse perception samples =
  let ys = Array.of_list (List.map (fun s -> s.label) samples) in
  let yh =
    Array.of_list
      (List.map
         (fun s -> Perception.v_out_features perception s.features)
         samples)
  in
  Cv_util.Stats.mse ys yh

(** [feature_list samples] extracts the monitored feature vectors. *)
let feature_list samples = List.map (fun s -> s.features) samples
