(** The end-to-end experiment generator (paper §V).

    Reproduces the paper's workflow on the synthetic platform:
    + build the perception stack (frozen extractor + head) and train the
      head on nominal-condition data collected along the track;
    + record the monitored "Flatten" feature bounds over the training
      set (plus buffer) — this is [D_in];
    + choose [D_out] as the widened inductive abstraction reach of the
      trained head over [D_in] — the property the original verification
      certifies;
    + drive the car under {e shifted} conditions; monitor flags
      out-of-distribution features, whose join with [D_in] forms
      [D_in ∪ Δ_in] for SVuDC;
    + fine-tune the head four times (small learning rate, fresh
      mixed-condition data each round) — networks 2..5 of Table I, all
      sharing the same input domain because the extractor is frozen. *)

type experiment = {
  track : Track.t;
  perception : Perception.t;  (** with the originally trained head *)
  heads : Cv_nn.Network.t array;  (** 5 heads: index 0 original, 1-4 fine-tuned *)
  din : Cv_interval.Box.t;  (** initial monitored feature bounds *)
  enlarged_din : Cv_interval.Box.t;  (** D_in ∪ Δ_in after shifted driving *)
  dout : Cv_interval.Box.t;  (** the certified output property *)
  ood_events : int;  (** box-monitor OOD frames while driving shifted *)
  pattern_flags : int;
      (** activation-pattern monitor flags over the same drive (the
          complementary monitor of the paper's ref [1]) *)
  kappa : float;  (** measured enlargement distance (∞-norm) *)
  train_loss : float;  (** final head training loss *)
}

type config = {
  seed : int;
  features : int;  (** monitored feature width *)
  train_samples : int;
  train_epochs : int;
  fine_tune_rounds : int;  (** number of successive fine-tunings *)
  fine_tune_samples : int;
  fine_tune_epochs : int;
  drive_steps : int;  (** shifted-condition deployment length *)
  din_buffer : float;  (** relative buffer on the monitored bounds *)
  widen : float;  (** absolute widening of the abstraction chain *)
  dout_margin : float;  (** extra margin of D_out beyond the chain reach *)
}

(** Defaults sized to keep every solver call tractable while leaving the
    MILP with real branching work. *)
let default_config =
  { seed = 7;
    features = 12;
    train_samples = 350;
    train_epochs = 40;
    fine_tune_rounds = 4;
    fine_tune_samples = 150;
    fine_tune_epochs = 3;
    drive_steps = 250;
    din_buffer = 0.05;
    widen = 0.04;
    dout_margin = 0.05 }

(** [build ?config ()] runs the whole generation pipeline
    deterministically from [config.seed]. *)
let build ?(config = default_config) () =
  let rng = Cv_util.Rng.create config.seed in
  let track = Track.stadium () in
  let perception = Perception.create ~rng ~features:config.features () in
  (* 1. Train the head on nominal data. *)
  let train_set =
    Dataset.generate ~conditions:Camera.nominal ~rng ~track ~perception
      config.train_samples
  in
  let head0, history =
    Cv_nn.Train.fit
      ~config:
        { Cv_nn.Train.default_config with
          Cv_nn.Train.epochs = config.train_epochs;
          seed = config.seed + 1 }
      perception.Perception.head
      (Dataset.to_training train_set)
  in
  let perception = Perception.with_head perception head0 in
  let train_loss = match List.rev history with l :: _ -> l | [] -> 0. in
  (* 2. Monitored feature bounds = D_in. *)
  let monitor =
    Cv_monitor.Monitor.of_samples ~buffer:config.din_buffer
      (Dataset.feature_list train_set)
  in
  let din = Cv_monitor.Monitor.current monitor in
  (* 3. D_out from the widened abstraction chain over D_in. *)
  let chain =
    Cv_domains.Analyzer.abstractions ~widen:config.widen
      Cv_domains.Analyzer.Symint head0 din
  in
  let dout =
    Cv_interval.Box.expand config.dout_margin (chain.(Array.length chain - 1))
  in
  (* 4. Deploy under shifted conditions; collect OOD events with both
     monitors (value bounds and activation patterns). *)
  let pattern_monitor =
    Cv_monitor.Pattern_monitor.create ~gamma:1 ~width:config.features
      (Dataset.feature_list train_set)
  in
  let state = Controller.init track ~s:0. in
  let _final, drive_trace =
    Controller.drive ~conditions:Camera.shifted ~rng ~track ~perception ~monitor
      ~steps:config.drive_steps state
  in
  let pattern_flags =
    List.fold_left
      (fun acc t ->
        if
          Cv_monitor.Pattern_monitor.observe pattern_monitor
            t.Controller.t_features
        then acc + 1
        else acc)
      0 drive_trace
  in
  let ood_events = Cv_monitor.Monitor.event_count monitor in
  let kappa = Cv_monitor.Monitor.kappa monitor in
  let enlarged_din = Cv_monitor.Monitor.enlarged_box ~margin:0.005 monitor in
  (* 5. Successive fine-tunings (networks 2..5). *)
  let heads = Array.make (config.fine_tune_rounds + 1) head0 in
  for round = 1 to config.fine_tune_rounds do
    let data =
      Dataset.generate ~conditions:Camera.shifted ~rng ~track ~perception
        (config.fine_tune_samples / 2)
      @ Dataset.generate ~conditions:Camera.nominal ~rng ~track ~perception
          (config.fine_tune_samples / 2)
    in
    let tuned, _ =
      Cv_nn.Train.fine_tune
        ~config:
          { Cv_nn.Train.fine_tune_config with
            Cv_nn.Train.epochs = config.fine_tune_epochs;
            seed = config.seed + 10 + round }
        heads.(round - 1)
        (Dataset.to_training data)
    in
    heads.(round) <- tuned
  done;
  { track;
    perception;
    heads;
    din;
    enlarged_din;
    dout;
    ood_events;
    pattern_flags;
    kappa;
    train_loss }

(** [property exp] is the original safety property
    [φ(head, D_in, D_out)]. *)
let property exp = Cv_verify.Property.make ~din:exp.din ~dout:exp.dout

(** [enlarged_property exp] is the SVuDC target
    [φ(head, D_in ∪ Δ_in, D_out)]. *)
let enlarged_property exp =
  Cv_verify.Property.make ~din:exp.enlarged_din ~dout:exp.dout

(** [drift exp round] is the parameter distance between head [round] and
    its predecessor. *)
let drift exp round =
  if round < 1 || round >= Array.length exp.heads then
    invalid_arg "Pipeline.drift";
  Cv_nn.Network.param_dist_inf exp.heads.(round - 1) exp.heads.(round)
