(** Labelled data generation on the race track — the stand-in for the
    paper's "manually labeled data set collected on the race track". *)

type sample = {
  pose : Track.pose;
  image : Cv_linalg.Vec.t;
  features : Cv_linalg.Vec.t;  (** frozen-extractor output *)
  label : float;  (** ground-truth v_out *)
}

(** [generate ?conditions ~rng ~track ~perception n] draws [n] labelled
    samples with lateral and heading jitter. *)
val generate :
  ?conditions:Camera.conditions ->
  rng:Cv_util.Rng.t ->
  track:Track.t ->
  perception:Perception.t ->
  int ->
  sample list

(** [to_training samples] converts to the head-training format. *)
val to_training : sample list -> Cv_nn.Train.sample list

(** [head_mse perception samples] is the head's prediction error on a
    dataset. *)
val head_mse : Perception.t -> sample list -> float

(** [feature_list samples] extracts the monitored feature vectors. *)
val feature_list : sample list -> Cv_linalg.Vec.t list
