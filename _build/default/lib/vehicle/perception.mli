(** The perception stack: frozen feature extractor + trainable head,
    mirroring the paper's split (frozen CNN → Flatten → verified dense
    head producing [v_out ∈ [0,1]]). *)

type t = {
  camera : Camera.config;
  extractor : Cv_nn.Network.t;  (** frozen: pixels → features (post-ReLU) *)
  head : Cv_nn.Network.t;  (** trainable: features → v_out *)
}

(** [feature_dim p] is the monitored "Flatten" width. *)
val feature_dim : t -> int

(** [head_dims ~features] is the verified-head architecture used across
    the experiment. *)
val head_dims : features:int -> int list

(** [create ?rng ?camera ?features ()] builds a stack with a fresh
    frozen extractor (a genuine convolution when [features] is a
    multiple of the conv map size, else a random dense projection) and a
    randomly initialised head. *)
val create : ?rng:Cv_util.Rng.t -> ?camera:Camera.config -> ?features:int -> unit -> t

(** [features_of p img] runs the frozen extractor. *)
val features_of : t -> float array -> Cv_linalg.Vec.t

(** [v_out p img] runs the full stack on an image. *)
val v_out : t -> float array -> float

(** [v_out_features p feats] runs only the head. *)
val v_out_features : t -> Cv_linalg.Vec.t -> float

(** [with_head p head] replaces the trainable head. *)
val with_head : t -> Cv_nn.Network.t -> t

(** [waypoint p v] reconstructs the visual waypoint pixel from [v_out]
    (the analogue of the paper's [(int (224·v), 75)]). *)
val waypoint : t -> float -> int * int

(** [steering_label track pose] is the ground-truth [v_out]: where the
    lookahead waypoint sits horizontally, normalised to [0, 1]. *)
val steering_label : Track.t -> Track.pose -> float
