(** Closed-loop lane following.

    A kinematic bicycle model steered from the DNN's [v_out]: the visual
    waypoint's horizontal position maps to a steering angle (waypoint at
    image centre ⇒ straight). Used by the examples to demonstrate the
    full monitored deployment loop, and by the pipeline to harvest
    out-of-distribution feature events while driving under shifted
    conditions. *)

type state = {
  pose : Track.pose;
  speed : float;
  steps : int;
  off_track : int;  (** steps spent outside the lane *)
}

type config = {
  dt : float;
  speed : float;
  wheelbase : float;
  steer_gain : float;  (** v_out-to-steering-angle gain *)
  max_steer : float;
}

(** Defaults roughly matching a 1/10-scale car at low speed. *)
let default_config =
  { dt = 0.05; speed = 1.2; wheelbase = 0.26; steer_gain = 1.6; max_steer = 0.5 }

(** [init track ~s] places the car on the centerline at arc length
    [s]. *)
let init track ~s =
  { pose = Track.pose_at track s; speed = 0.; steps = 0; off_track = 0 }

(** [steer_of_vout cfg v] maps the DNN output to a steering angle:
    [v = 0.5] is straight, 0 hard left, 1 hard right (sign per the
    synthetic camera's column convention). *)
let steer_of_vout cfg v =
  Cv_util.Float_utils.clamp ~lo:(-.cfg.max_steer) ~hi:cfg.max_steer
    ((v -. 0.5) *. 2. *. cfg.steer_gain *. cfg.max_steer)

(** [step cfg track state ~steer] advances the bicycle model by one
    tick. *)
let step cfg track state ~steer =
  let pose = state.pose in
  let v = cfg.speed in
  let yaw' = pose.Track.yaw +. (v /. cfg.wheelbase *. tan steer *. cfg.dt) in
  let pose' =
    { Track.px = pose.Track.px +. (v *. cos pose.Track.yaw *. cfg.dt);
      py = pose.Track.py +. (v *. sin pose.Track.yaw *. cfg.dt);
      yaw = Float.atan2 (sin yaw') (cos yaw') }
  in
  { pose = pose';
    speed = v;
    steps = state.steps + 1;
    off_track = state.off_track + (if Track.on_track track pose' then 0 else 1) }

(** One simulation step's telemetry. *)
type telemetry = {
  t_pose : Track.pose;
  t_vout : float;
  t_features : Cv_linalg.Vec.t;
  t_ood : bool;  (** did the monitor flag this frame? *)
}

(** [drive ?cfg ?conditions ~rng ~track ~perception ~monitor ~steps state]
    runs the closed loop: capture → extract features → monitor →
    head → steer → integrate. Returns the final state and the telemetry
    trace (monitor events are recorded in [monitor] as a side
    effect). *)
let drive ?(cfg = default_config) ?(conditions = Camera.nominal) ~rng ~track
    ~perception ~monitor ~steps state =
  let trace = ref [] in
  let state = ref state in
  for _ = 1 to steps do
    let img =
      Camera.capture ~rng perception.Perception.camera conditions track
        !state.pose
    in
    let feats = Perception.features_of perception img in
    let ood = Cv_monitor.Monitor.observe monitor feats <> None in
    let v = Perception.v_out_features perception feats in
    let steer = steer_of_vout cfg v in
    trace :=
      { t_pose = !state.pose; t_vout = v; t_features = feats; t_ood = ood }
      :: !trace;
    state := step cfg track !state ~steer
  done;
  (!state, List.rev !trace)
