(** The perception stack: frozen feature extractor + trainable head.

    The paper trains a CNN by transfer learning, freezes the
    convolutional part, and formally verifies only the dense head after
    the "Flatten" layer (Figure 4). We mirror that split exactly:

    - {b extractor}: a fixed random-projection + ReLU layer standing in
      for the frozen convolution stack. Its output is the monitored
      "Flatten" feature vector — non-negative, like real post-ReLU
      activations.
    - {b head}: a small trainable ReLU MLP ending in a single
      identity-output neuron [v_out]; this is the network handed to the
      verifier, and the object fine-tuning perturbs.

    The visual waypoint is reconstructed from [v_out] by the paper's
    formula [(x, y) = (int (224 · v_out), 75)] — here scaled to the
    synthetic camera's width. *)

type t = {
  camera : Camera.config;
  extractor : Cv_nn.Network.t;  (** frozen: pixels → features (post-ReLU) *)
  head : Cv_nn.Network.t;  (** trainable: features → v_out ∈ [0,1] *)
}

(** [feature_dim p] is the monitored "Flatten" width. *)
let feature_dim p = Cv_nn.Network.out_dim p.extractor

(** [head_dims ~features] is the verified-head architecture used across
    the experiment: features → 10 → 8 → 6 → 1 (sized so exact MILP
    verification of the full head takes seconds while single-layer reuse
    subproblems take milliseconds — the Table I cost asymmetry). *)
let head_dims ~features = [ features; 10; 8; 6; 1 ]

(** [create ?rng ?camera ?features ()] builds a stack with a fresh
    frozen extractor and a randomly initialised head.

    When [features] is a multiple of the conv output-map size, the
    extractor is a genuine frozen convolution (kernel 4, stride 3,
    ReLU — lowered to a dense layer by {!Cv_nn.Conv}), matching the
    paper's frozen-CNN-then-Flatten pipeline; otherwise it falls back to
    a frozen random dense projection. *)
let create ?rng ?(camera = Camera.default_config) ?(features = 12) () =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 2024 in
  let spec =
    { Cv_nn.Conv.in_height = camera.Camera.height;
      in_width = camera.Camera.width;
      kernel = 4;
      stride = 3;
      out_channels = 1 }
  in
  let map_size = Cv_nn.Conv.output_size spec in
  let extractor =
    if map_size > 0 && features mod map_size = 0 then begin
      let spec = { spec with Cv_nn.Conv.out_channels = features / map_size } in
      Cv_nn.Network.make
        [| Cv_nn.Conv.random ~rng spec ~act:Cv_nn.Activation.Relu |]
    end
    else
      Cv_nn.Network.make
        [| Cv_nn.Layer.random ~rng ~in_dim:(Camera.pixels camera)
             ~out_dim:features Cv_nn.Activation.Relu |]
  in
  let head =
    Cv_nn.Network.random ~rng ~dims:(head_dims ~features)
      ~act:Cv_nn.Activation.Relu ()
  in
  { camera; extractor; head }

(** [features_of p img] runs the frozen extractor on a flattened
    image. *)
let features_of p img = Cv_nn.Network.eval p.extractor img

(** [v_out p img] runs the full stack on an image. *)
let v_out p img = (Cv_nn.Network.eval p.head (features_of p img)).(0)

(** [v_out_features p feats] runs only the head. *)
let v_out_features p feats = (Cv_nn.Network.eval p.head feats).(0)

(** [with_head p head] replaces the trainable head (after training or
    fine-tuning). *)
let with_head p head =
  if Cv_nn.Network.in_dim head <> feature_dim p then
    invalid_arg "Perception.with_head: feature dimension mismatch";
  { p with head }

(** [waypoint p v] reconstructs the visual waypoint pixel from [v_out],
    scaled to the synthetic camera: [(int (width · v), ~row 3/4 up)] —
    the analogue of the paper's [(int (224·v), 75)]. *)
let waypoint p v =
  let v = Cv_util.Float_utils.clamp ~lo:0. ~hi:1. v in
  ( int_of_float (float_of_int (p.camera.Camera.width - 1) *. v),
    p.camera.Camera.height * 3 / 4 )

(** [steering_label track pose] is the ground-truth [v_out]: where the
    lookahead waypoint sits horizontally in the current view, normalised
    to [0, 1] (0.5 = straight ahead). *)
let steering_label track (pose : Track.pose) =
  let lookahead = 1.5 in
  let s0 = Track.nearest_s track pose in
  let target = Track.point_at track (s0 +. lookahead) in
  let dx = target.Track.x -. pose.Track.px
  and dy = target.Track.y -. pose.Track.py in
  let forward = (dx *. cos pose.Track.yaw) +. (dy *. sin pose.Track.yaw) in
  let lateral = (-.dx *. sin pose.Track.yaw) +. (dy *. cos pose.Track.yaw) in
  let angle = Float.atan2 lateral (Float.max 0.05 forward) in
  Cv_util.Float_utils.clamp ~lo:0. ~hi:1. (0.5 +. (angle /. 1.2))
