(** Race-track geometry for the 1/10-scale vehicle substitute: a closed
    "stadium" centerline with pose queries and ASCII rendering. *)

type point = { x : float; y : float }

type t = {
  centerline : point array;  (** dense closed polyline *)
  cum_s : float array;  (** cumulative arc length per sample *)
  length : float;  (** total lap length *)
  half_width : float;  (** lane half-width *)
}

(** [stadium ?straight ?radius ?half_width ?samples ()] builds a stadium
    track: two straights joined by half-circles. *)
val stadium :
  ?straight:float ->
  ?radius:float ->
  ?half_width:float ->
  ?samples:int ->
  unit ->
  t

(** [point_at t s] is the centerline point at arc length [s] (wraps). *)
val point_at : t -> float -> point

(** [heading_at t s] is the track tangent direction (radians). *)
val heading_at : t -> float -> float

(** [curvature_at t s] is the approximate signed curvature. *)
val curvature_at : t -> float -> float

(** A vehicle pose on the plane. *)
type pose = { px : float; py : float; yaw : float }

(** [nearest_s t pose] is the arc length of the closest centerline
    point. *)
val nearest_s : t -> pose -> float

(** [lateral_offset t pose] is the signed distance from the centerline
    (positive = left of travel direction). *)
val lateral_offset : t -> pose -> float

(** [relative_heading t pose] is the vehicle yaw minus the track
    heading, wrapped to (−π, π]. *)
val relative_heading : t -> pose -> float

(** [pose_at ?lateral ?heading_err t s] places a vehicle on the track. *)
val pose_at : ?lateral:float -> ?heading_err:float -> t -> float -> pose

(** [on_track t pose] — is the vehicle inside the lane? *)
val on_track : t -> pose -> bool

(** [render ?width ?height t poses] draws an ASCII map with the poses
    marked — the Figure 3 stand-in. *)
val render : ?width:int -> ?height:int -> t -> pose list -> string
