(** Closed-loop lane following: a kinematic bicycle model steered from
    the DNN's [v_out], with runtime monitoring in the loop. *)

type state = {
  pose : Track.pose;
  speed : float;
  steps : int;
  off_track : int;  (** steps spent outside the lane *)
}

type config = {
  dt : float;
  speed : float;
  wheelbase : float;
  steer_gain : float;  (** v_out-to-steering-angle gain *)
  max_steer : float;
}

(** Defaults roughly matching a 1/10-scale car at low speed. *)
val default_config : config

(** [init track ~s] places the car on the centerline at arc length
    [s]. *)
val init : Track.t -> s:float -> state

(** [steer_of_vout cfg v] maps the DNN output to a steering angle
    ([v = 0.5] is straight). *)
val steer_of_vout : config -> float -> float

(** [step cfg track state ~steer] advances the bicycle model one
    tick. *)
val step : config -> Track.t -> state -> steer:float -> state

(** One simulation step's telemetry. *)
type telemetry = {
  t_pose : Track.pose;
  t_vout : float;
  t_features : Cv_linalg.Vec.t;
  t_ood : bool;  (** did the monitor flag this frame? *)
}

(** [drive ?cfg ?conditions ~rng ~track ~perception ~monitor ~steps
    state] runs the closed loop (capture → features → monitor → head →
    steer → integrate); monitor events are recorded in [monitor] as a
    side effect. *)
val drive :
  ?cfg:config ->
  ?conditions:Camera.conditions ->
  rng:Cv_util.Rng.t ->
  track:Track.t ->
  perception:Perception.t ->
  monitor:Cv_monitor.Monitor.t ->
  steps:int ->
  state ->
  state * telemetry list
