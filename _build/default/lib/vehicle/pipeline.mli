(** The end-to-end experiment generator (paper §V): train the head,
    derive [D_in] from monitored feature bounds, choose [D_out], drive
    under shifted conditions to collect Δ_in, and fine-tune repeatedly —
    producing the networks and domains of the Table I reproduction. *)

type experiment = {
  track : Track.t;
  perception : Perception.t;  (** with the originally trained head *)
  heads : Cv_nn.Network.t array;  (** index 0 original, then fine-tuned *)
  din : Cv_interval.Box.t;  (** initial monitored feature bounds *)
  enlarged_din : Cv_interval.Box.t;  (** D_in ∪ Δ_in after shifted driving *)
  dout : Cv_interval.Box.t;  (** the certified output property *)
  ood_events : int;  (** box-monitor OOD frames while driving shifted *)
  pattern_flags : int;  (** activation-pattern monitor flags, same drive *)
  kappa : float;  (** measured enlargement distance (∞-norm) *)
  train_loss : float;  (** final head training loss *)
}

type config = {
  seed : int;
  features : int;
  train_samples : int;
  train_epochs : int;
  fine_tune_rounds : int;
  fine_tune_samples : int;
  fine_tune_epochs : int;
  drive_steps : int;
  din_buffer : float;  (** relative buffer on the monitored bounds *)
  widen : float;  (** absolute widening of the abstraction chain *)
  dout_margin : float;  (** extra margin of D_out beyond the chain reach *)
}

val default_config : config

(** [build ?config ()] runs the whole generation pipeline
    deterministically from [config.seed]. *)
val build : ?config:config -> unit -> experiment

(** [property exp] is the original safety property. *)
val property : experiment -> Cv_verify.Property.t

(** [enlarged_property exp] is the SVuDC target. *)
val enlarged_property : experiment -> Cv_verify.Property.t

(** [drift exp round] is the parameter distance between head [round] and
    its predecessor (1-based). *)
val drift : experiment -> int -> float
