(** Synthetic forward-facing camera: a low-resolution grayscale
    ground-projection of the lane, with explicit environment conditions
    so a deployment-time shift produces genuine out-of-distribution
    features (the paper's "black swan" trigger). *)

type config = {
  width : int;
  height : int;
  fov : float;  (** horizontal field of view in radians *)
  near : float;  (** ground distance of the bottom row *)
  far : float;  (** ground distance of the top row *)
  lane_sigma : float;  (** ridge thickness as a fraction of image width *)
}

(** Defaults sized so the verified head stays solver-friendly. *)
val default_config : config

(** Operating conditions; shifting these simulates lighting/weather
    changes between data collection and deployment. *)
type conditions = {
  brightness : float;  (** additive offset on all pixels *)
  contrast : float;  (** multiplicative gain *)
  noise : float;  (** iid Gaussian pixel noise σ *)
}

(** The nominal (data-collection) conditions. *)
val nominal : conditions

(** Slightly brighter, higher-gain, noisier deployment conditions that
    provoke occasional OOD events. *)
val shifted : conditions

(** [pixels cfg] is the flattened image dimension. *)
val pixels : config -> int

(** [capture ?rng cfg cond track pose] renders the flattened grayscale
    image seen from [pose] (deterministic without [rng]). *)
val capture :
  ?rng:Cv_util.Rng.t ->
  config ->
  conditions ->
  Track.t ->
  Track.pose ->
  float array

(** [ascii cfg img] renders the image with intensity characters. *)
val ascii : config -> float array -> string
