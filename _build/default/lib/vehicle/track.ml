(** Race-track geometry for the 1/10-scale vehicle substitute.

    The paper's evaluation platform is a physical 1/10-scale car doing
    lane following on a race track; we replace it with a planar track
    model: a closed centerline sampled densely from a parametric oval
    with two straights and two 180° curves (a "stadium" track), plus
    pose queries (nearest centerline point, lateral offset, relative
    heading) that the camera model and the closed-loop simulation
    need. *)

type point = { x : float; y : float }

type t = {
  centerline : point array;  (** dense closed polyline *)
  cum_s : float array;  (** cumulative arc length per sample *)
  length : float;  (** total lap length *)
  half_width : float;  (** lane half-width *)
}

let pi = Float.pi

(** [stadium ~straight ~radius ~half_width ~samples ()] builds a stadium
    track: two straights of length [straight] joined by half-circles of
    [radius]. *)
let stadium ?(straight = 6.0) ?(radius = 2.0) ?(half_width = 0.35)
    ?(samples = 600) () =
  let perimeter = (2. *. straight) +. (2. *. pi *. radius) in
  let point_at s =
    (* s ∈ [0, perimeter): walk the stadium boundary counter-clockwise,
       starting at the beginning of the bottom straight. *)
    let s = Float.rem s perimeter in
    if s < straight then { x = s; y = -.radius }
    else if s < straight +. (pi *. radius) then begin
      let a = (s -. straight) /. radius in
      { x = straight +. (radius *. sin a); y = -.radius *. cos a }
    end
    else if s < (2. *. straight) +. (pi *. radius) then begin
      let d = s -. straight -. (pi *. radius) in
      { x = straight -. d; y = radius }
    end
    else begin
      let a = (s -. (2. *. straight) -. (pi *. radius)) /. radius in
      { x = -.radius *. sin a; y = radius *. cos a }
    end
  in
  let centerline =
    Array.init samples (fun i ->
        point_at (float_of_int i /. float_of_int samples *. perimeter))
  in
  let cum_s =
    Array.init samples (fun i ->
        float_of_int i /. float_of_int samples *. perimeter)
  in
  { centerline; cum_s; length = perimeter; half_width }

(** [point_at t s] is the centerline point at arc length [s] (wraps). *)
let point_at t s =
  let s = Float.rem (Float.rem s t.length +. t.length) t.length in
  let n = Array.length t.centerline in
  let idx =
    int_of_float (s /. t.length *. float_of_int n) mod n
  in
  t.centerline.(idx)

(** [heading_at t s] is the track tangent direction (radians) at arc
    length [s]. *)
let heading_at t s =
  let eps = t.length /. float_of_int (Array.length t.centerline) in
  let p1 = point_at t s and p2 = point_at t (s +. eps) in
  Float.atan2 (p2.y -. p1.y) (p2.x -. p1.x)

(** [curvature_at t s] is the approximate signed curvature at [s]. *)
let curvature_at t s =
  let eps = t.length /. 50. in
  let h1 = heading_at t s and h2 = heading_at t (s +. eps) in
  let dh = Float.atan2 (sin (h2 -. h1)) (cos (h2 -. h1)) in
  dh /. eps

(** A vehicle pose on the plane. *)
type pose = { px : float; py : float; yaw : float }

(** [nearest_s t pose] is the arc length of the centerline point closest
    to the pose. *)
let nearest_s t pose =
  let best = ref 0 and best_d = ref Float.infinity in
  Array.iteri
    (fun i p ->
      let d = ((p.x -. pose.px) ** 2.) +. ((p.y -. pose.py) ** 2.) in
      if d < !best_d then begin
        best_d := d;
        best := i
      end)
    t.centerline;
  t.cum_s.(!best)

(** [lateral_offset t pose] is the signed distance from the centerline
    (positive = left of travel direction). *)
let lateral_offset t pose =
  let s = nearest_s t pose in
  let c = point_at t s in
  let h = heading_at t s in
  (* Cross product of tangent with the offset vector. *)
  let dx = pose.px -. c.x and dy = pose.py -. c.y in
  (-.sin h *. dx) +. (cos h *. dy)

(** [relative_heading t pose] is the vehicle yaw minus the track heading,
    wrapped to (−π, π]. *)
let relative_heading t pose =
  let h = heading_at t (nearest_s t pose) in
  let d = pose.yaw -. h in
  Float.atan2 (sin d) (cos d)

(** [pose_at ?lateral ?heading_err t s] places a vehicle on the track at
    arc length [s] with the given lateral offset and heading error. *)
let pose_at ?(lateral = 0.) ?(heading_err = 0.) t s =
  let c = point_at t s in
  let h = heading_at t s in
  { px = c.x -. (lateral *. sin h);
    py = c.y +. (lateral *. cos h);
    yaw = h +. heading_err }

(** [on_track t pose] — is the vehicle inside the lane? *)
let on_track t pose = Float.abs (lateral_offset t pose) <= t.half_width

(** [render ?width ?height t poses] draws an ASCII map of the track
    (['.'] centerline) with the given poses marked ['o'] — the Figure 3
    stand-in. *)
let render ?(width = 72) ?(height = 24) t poses =
  let xs = Array.map (fun p -> p.x) t.centerline in
  let ys = Array.map (fun p -> p.y) t.centerline in
  let min_x, max_x = Cv_util.Stats.min_max xs in
  let min_y, max_y = Cv_util.Stats.min_max ys in
  let margin = 0.5 in
  let min_x = min_x -. margin and max_x = max_x +. margin in
  let min_y = min_y -. margin and max_y = max_y +. margin in
  let grid = Array.make_matrix height width ' ' in
  let plot ch x y =
    let c =
      int_of_float ((x -. min_x) /. (max_x -. min_x) *. float_of_int (width - 1))
    in
    let r =
      int_of_float ((max_y -. y) /. (max_y -. min_y) *. float_of_int (height - 1))
    in
    if r >= 0 && r < height && c >= 0 && c < width then grid.(r).(c) <- ch
  in
  Array.iter (fun p -> plot '.' p.x p.y) t.centerline;
  List.iter (fun p -> plot 'o' p.px p.py) poses;
  let buf = Buffer.create (width * height) in
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf
