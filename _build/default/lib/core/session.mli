(** A continuous-verification session: the stateful object a deployment
    keeps around. It owns the certified network, its proof artifact and
    the runtime monitor, and exposes the continuous-engineering events
    as transitions; a rejected transition leaves the session unchanged,
    so the deployed system only ever runs configurations whose proof is
    current. *)

type event =
  | Certified of string  (** initial certification (solver name) *)
  | Ood_event of int  (** running OOD count after an observation *)
  | Domain_enlarged of Report.t
  | Domain_rejected of Report.t
  | Version_adopted of Report.t
  | Version_rejected of Report.t
  | Spec_changed of Report.t
  | Spec_rejected of Report.t

type t

(** [certify ?config ?widen net prop] runs the original (exact)
    verification and opens a session; [Error] with the failure report
    when the property does not hold. *)
val certify :
  ?config:Strategy.config ->
  ?widen:float ->
  Cv_nn.Network.t ->
  Cv_verify.Property.t ->
  (t, Cv_verify.Verifier.report) result

(** [resume ?config ?widen net artifact] opens a session from a
    persisted artifact without re-verifying. *)
val resume :
  ?config:Strategy.config ->
  ?widen:float ->
  Cv_nn.Network.t ->
  Cv_artifacts.Artifacts.t ->
  t

(** [network s] is the currently certified network. *)
val network : t -> Cv_nn.Network.t

(** [artifact s] is the current proof artifact. *)
val artifact : t -> Cv_artifacts.Artifacts.t

(** [property s] is the currently certified property. *)
val property : t -> Cv_verify.Property.t

(** [history s] lists transitions, oldest first. *)
val history : t -> event list

(** [pending_ood s] is the number of OOD events awaiting
    {!absorb_enlargement}. *)
val pending_ood : t -> int

(** [observe s features] feeds one monitored feature vector; returns the
    OOD event when it escapes the certified domain. *)
val observe : t -> Cv_linalg.Vec.t -> Cv_monitor.Monitor.event option

(** [absorb_enlargement ?margin s] solves the pending SVuDC instance;
    on success the enlarged domain is committed, the artifact refreshed
    and the OOD log cleared. *)
val absorb_enlargement : ?margin:float -> t -> Report.t

(** [adopt ?netabs s candidate] solves the SVbTV instance for a
    fine-tuned candidate; on success the candidate becomes the certified
    network. *)
val adopt : ?netabs:Netabs_reuse.t -> t -> Cv_nn.Network.t -> Report.t

(** [retarget s new_dout] solves the SVuSC instance for an evolved
    specification; on success the artifact is rebuilt against the new
    [D_out]. *)
val retarget : t -> Cv_interval.Box.t -> Report.t

(** [event_string e] is a one-line audit entry. *)
val event_string : event -> string
