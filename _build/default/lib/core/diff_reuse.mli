(** SVbTV via differential verification — a ReluDiff-flavoured route the
    paper's related-work section points at (its ref [20]) but does not
    exploit.

    [ε = max |f'(x) − f(x)|] over the (enlarged) domain is bounded by
    differential interval analysis ({!Cv_diffverify.Diffverify}); the
    property transfers when [S_n ⊕ ℓκ ⊕ ε ⊆ D_out] (the ℓκ term drops
    when [Δ_in = ∅]). One cheap forward sweep, no solver calls. *)

(** [prop_diff ?norm p] runs the differential reuse route. *)
val prop_diff :
  ?norm:Cv_lipschitz.Lipschitz.norm -> Problem.svbtv -> Report.attempt
