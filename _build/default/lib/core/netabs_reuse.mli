(** Proposition 6 — reusing a network abstraction.

    For a single-output head, the artifact is a {e pair} of structural
    abstractions (see {!Cv_netabs.Merge}): an upper model dominating [f]
    from above and a lower model built from the negated network. Reuse
    for a fine-tuned [f'] is a pure weight-domination check; the
    weight-interval variant ({!Cv_netabs.Interval_abs}) is a cheaper,
    looser alternative. *)

type t = {
  upper : Cv_netabs.Merge.t;  (** dominates f from above *)
  lower : Cv_netabs.Merge.t;  (** built from −f; dominates −f from above *)
  din : Cv_interval.Box.t;  (** domain the abstraction was built on *)
}

(** [build ?refinements net ~din] constructs the abstraction pair,
    starting from the coarsest merge and refining [refinements] times
    (0 = coarsest). Raises {!Cv_netabs.Netabs.Unsupported} for
    non-ReLU/multi-output networks. *)
val build : ?refinements:int -> Cv_nn.Network.t -> din:Cv_interval.Box.t -> t

(** [build_adaptive ?max_refinements net ~din ~dout] — the CEGAR loop
    of the abstraction framework (paper ref [7]): refine from the
    coarsest merge until the pair proves [f(D_in) ⊆ D_out]; [None] when
    the budget runs out. Returns the coarsest proving pair, maximising
    the headroom available to Prop. 6 reuse. *)
val build_adaptive :
  ?max_refinements:int ->
  Cv_nn.Network.t ->
  din:Cv_interval.Box.t ->
  dout:Cv_interval.Box.t ->
  t option

(** [output_bounds ?domain t] bounds the abstraction pair's output over
    its domain: [(lo, hi)] such that every network dominated by the pair
    maps [din] into [[lo, hi]]. *)
val output_bounds : ?domain:Cv_domains.Analyzer.domain_kind -> t -> float * float

(** [proves ?domain t ~dout] — does the pair establish
    [f(D_in) ⊆ D_out]? *)
val proves :
  ?domain:Cv_domains.Analyzer.domain_kind -> t -> dout:Cv_interval.Box.t -> bool

(** [reuses t net'] — Prop. 6's premise [f' →D_in f̂]: both models still
    dominate the fine-tuned network (weight checks only, no solver). *)
val reuses : t -> Cv_nn.Network.t -> bool

(** [prop6 t p] — the full Proposition 6 attempt for an SVbTV instance
    with [Δ_in = ∅] (the proposition transfers the proof on the original
    domain; combine with the SVuDC routes for enlargement, as §IV-B
    suggests). *)
val prop6 : t -> Problem.svbtv -> Report.attempt

(** [prop6_interval ~slack p] — the weight-interval variant: build the
    interval abstraction of the old network with the given slack, check
    it proves the property on the original domain, then test parameter
    containment of f'. *)
val prop6_interval : slack:float -> Problem.svbtv -> Report.attempt
