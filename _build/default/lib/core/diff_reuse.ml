(** SVbTV via differential verification — a ReluDiff-flavoured route the
    paper's related-work section points at (its ref [20]) but does not
    exploit; we add it as a seventh reuse strategy.

    Idea: fine-tuning moved the weights a little, so
    [ε = max |f'(x) − f(x)|] over the (enlarged) domain is small and
    cheap to bound by differential interval analysis. Combined with the
    stored artifacts:

    [reach(f', D_in ∪ Δ_in) ⊆ S_n ⊕ ℓκ ⊕ ε ⊆ D_out?]

    where [S_n] and ℓ come from the old proof and κ measures the domain
    enlargement (0 when [Δ_in = ∅], in which case the ℓκ term drops and
    no Lipschitz constant is needed). One cheap forward sweep, no solver
    calls. *)

let prop_diff ?(norm = Cv_lipschitz.Lipschitz.Linf) (p : Problem.svbtv) =
  let artifact = p.Problem.artifact in
  let old_prop = artifact.Cv_artifacts.Artifacts.property in
  let run () =
    match Cv_artifacts.Artifacts.final_abstraction artifact with
    | None -> (Report.Inconclusive "artifact carries no state abstractions", "")
    | Some s_n ->
      let old_din = old_prop.Cv_verify.Property.din in
      let kappa =
        Cv_lipschitz.Lipschitz.kappa ~norm ~old_box:old_din
          ~new_box:p.Problem.new_din
      in
      let enlargement_term =
        if kappa <= 0. then Some 0.
        else
          match
            Cv_artifacts.Artifacts.lipschitz_for artifact
              (Cv_lipschitz.Lipschitz.norm_name norm)
          with
          | Some ell -> Some (ell *. kappa)
          | None -> None
      in
      (match enlargement_term with
      | None ->
        ( Report.Inconclusive
            "domain enlarged but no Lipschitz constant stored",
          "" )
      | Some lk ->
        let eps =
          Cv_diffverify.Diffverify.max_output_delta ~old_net:p.Problem.old_net
            ~new_net:p.Problem.new_net p.Problem.new_din
        in
        let inflated = Cv_interval.Box.expand (lk +. eps) s_n in
        let dout = old_prop.Cv_verify.Property.dout in
        let detail =
          Printf.sprintf "ε=%.4g (diff bound), ℓκ=%.4g: S_n ⊕ %.4g %s D_out"
            eps lk (lk +. eps)
            (if Cv_interval.Box.subset_tol inflated dout then "⊆" else "⊄")
        in
        if Cv_interval.Box.subset_tol inflated dout then (Report.Safe, detail)
        else
          (Report.Inconclusive "inflated S_n escapes D_out", detail))
  in
  let (outcome, detail), wall = Cv_util.Timer.time run in
  { Report.name = "prop-diff";
    outcome;
    timing = Report.sequential_timing wall;
    detail }
