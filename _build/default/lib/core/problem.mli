(** The two continuous-verification problems of the paper.

    Both assume the property [φ(f, D_in, D_out)] has already been proved
    and its proof artifacts are available:

    - {b SVuDC} (Problem 2) — Safety Verification under Domain Change:
      same network, enlarged input domain [D_in ∪ Δ_in].
    - {b SVbTV} (Problem 1) — Safety Verification between Two Versions:
      fine-tuned network [f'], possibly together with a domain
      enlargement.

    [Δ_in] is represented by the enlarged bounding box
    [new_din ⊇ D_in] (exactly the monitored-bounds representation of the
    paper's experiment); the SVuDC sub-case with [Δ_in = ∅] is
    [new_din = D_in]. *)

type svudc = {
  net : Cv_nn.Network.t;  (** the verified network f *)
  artifact : Cv_artifacts.Artifacts.t;  (** proof of φ(f, D_in, D_out) *)
  new_din : Cv_interval.Box.t;  (** D_in ∪ Δ_in *)
}

type svbtv = {
  old_net : Cv_nn.Network.t;  (** f *)
  new_net : Cv_nn.Network.t;  (** f', fine-tuned from f *)
  artifact : Cv_artifacts.Artifacts.t;  (** proof of φ(f, D_in, D_out) *)
  new_din : Cv_interval.Box.t;
      (** D_in ∪ Δ_in (= D_in when only parameters changed) *)
}

(** [svudc ~net ~artifact ~new_din] validates and builds an SVuDC
    instance. Raises [Invalid_argument] when the artifact was not
    produced for [net] or [new_din] does not contain the proved
    [D_in]. *)
val svudc :
  net:Cv_nn.Network.t ->
  artifact:Cv_artifacts.Artifacts.t ->
  new_din:Cv_interval.Box.t ->
  svudc

(** [svbtv ~old_net ~new_net ~artifact ~new_din] validates and builds an
    SVbTV instance. Raises [Invalid_argument] on artifact/network
    mismatch, differing network shapes, or a shrunken domain. *)
val svbtv :
  old_net:Cv_nn.Network.t ->
  new_net:Cv_nn.Network.t ->
  artifact:Cv_artifacts.Artifacts.t ->
  new_din:Cv_interval.Box.t ->
  svbtv

(** [svudc_property p] is the target property
    [φ(f, D_in ∪ Δ_in, D_out)]. *)
val svudc_property : svudc -> Cv_verify.Property.t

(** [svbtv_property p] is the target property
    [φ(f', D_in ∪ Δ_in, D_out)]. *)
val svbtv_property : svbtv -> Cv_verify.Property.t

(** [drift p] is the ∞-norm parameter distance between the two versions
    of an SVbTV instance — how hard fine-tuning shook the network. *)
val drift : svbtv -> float
