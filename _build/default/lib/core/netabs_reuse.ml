(** Proposition 6 — reusing a network abstraction.

    For a single-output head, the artifact is a {e pair} of structural
    abstractions (see {!Cv_netabs.Merge}): an upper model [f̂ᵘ ≥ f] and a
    lower model built from the negated network ([f̂ˡ = −abstraction(−f)
    ≤ f]). The original safety proof goes through the pair:
    [max f̂ᵘ ≤ hi(D_out)] and [min −f̂ˡ̂ ... ≥ lo(D_out)].

    Reuse for a fine-tuned f' is then a pure weight-domination check
    ([Merge.reuses]); if both models still dominate f', the old proof
    transfers with {e zero} solver work. A weight-interval variant
    ({!Cv_netabs.Interval_abs}) is provided as a cheaper, looser
    alternative. *)

type t = {
  upper : Cv_netabs.Merge.t;  (** dominates f from above *)
  lower : Cv_netabs.Merge.t;  (** built from −f; dominates −f from above *)
  din : Cv_interval.Box.t;  (** domain the abstraction was built on *)
}

let negate net =
  let layers = Cv_nn.Network.layers net in
  let n = Array.length layers in
  let out = layers.(n - 1) in
  layers.(n - 1) <-
    Cv_nn.Layer.make
      (Cv_linalg.Mat.scale (-1.) out.Cv_nn.Layer.weights)
      (Cv_linalg.Vec.scale (-1.) out.Cv_nn.Layer.bias)
      out.Cv_nn.Layer.act;
  Cv_nn.Network.make layers

(** [build ?refinements net ~din] constructs the abstraction pair,
    starting from the coarsest merge and refining [refinements] times
    (0 = coarsest). Raises {!Cv_netabs.Netabs.Unsupported} for
    non-ReLU/multi-output networks. *)
let build ?(refinements = 0) net ~din =
  let refine_n ab =
    let rec go ab k =
      if k = 0 then ab
      else match Cv_netabs.Merge.refine ab with None -> ab | Some ab' -> go ab' (k - 1)
    in
    go ab refinements
  in
  let upper = refine_n (Cv_netabs.Merge.coarsest (Cv_netabs.Netabs.split net ~din)) in
  let lower =
    refine_n (Cv_netabs.Merge.coarsest (Cv_netabs.Netabs.split (negate net) ~din))
  in
  { upper; lower; din }

(** [output_bounds ?engine t] bounds the abstraction pair's output over
    its domain: returns [(lo, hi)] such that every network dominated by
    the pair maps [din] into [[lo, hi]]. Bounds are obtained by running
    the chosen engine (default symbolic intervals) on the merged
    networks over the shifted domain. *)
let output_bounds ?(domain = Cv_domains.Analyzer.Symint) t =
  let bound_one merge =
    let net = Cv_netabs.Merge.merged_network merge in
    let shifted =
      Cv_netabs.Netabs.shifted_box t.din
        merge.Cv_netabs.Merge.merged.Cv_netabs.Netabs.input_shift
    in
    let out = Cv_domains.Analyzer.output_box domain net shifted in
    Cv_interval.Interval.hi (Cv_interval.Box.get out 0)
  in
  let hi = bound_one t.upper in
  let neg_hi = bound_one t.lower in
  (-.neg_hi, hi)

(** [proves t ~dout] — does the pair establish [f(D_in) ⊆ D_out]? *)
let proves ?domain t ~dout =
  let lo, hi = output_bounds ?domain t in
  let iv = Cv_interval.Box.get dout 0 in
  Cv_util.Float_utils.geq lo (Cv_interval.Interval.lo iv)
  && Cv_util.Float_utils.leq hi (Cv_interval.Interval.hi iv)

(** [build_adaptive ?max_refinements net ~din ~dout] — the CEGAR loop of
    the abstraction framework (paper ref [7]): start from the coarsest
    merge and refine until the pair proves [f(D_in) ⊆ D_out] (or the
    refinement budget runs out — [None]). Returns the {e coarsest}
    proving pair found, which maximises the headroom available to
    Prop. 6 reuse. *)
let build_adaptive ?(max_refinements = 64) net ~din ~dout =
  let refine_pair t =
    match
      (Cv_netabs.Merge.refine t.upper, Cv_netabs.Merge.refine t.lower)
    with
    | None, None -> None
    | u, l ->
      Some
        { t with
          upper = Option.value ~default:t.upper u;
          lower = Option.value ~default:t.lower l }
  in
  let rec go t k =
    let lo, hi = output_bounds t in
    let iv = Cv_interval.Box.get dout 0 in
    if
      Cv_util.Float_utils.geq lo (Cv_interval.Interval.lo iv)
      && Cv_util.Float_utils.leq hi (Cv_interval.Interval.hi iv)
    then Some t
    else if k = 0 then None
    else match refine_pair t with None -> None | Some t' -> go t' (k - 1)
  in
  go (build net ~din) max_refinements

(** [reuses t net'] — Prop. 6's premise [f' →{D_in} f̂]: both models
    still dominate the fine-tuned network (weight checks only). *)
let reuses t net' =
  Cv_netabs.Merge.reuses t.upper net'
  && Cv_netabs.Merge.reuses t.lower (negate net')

(** [prop6 t p] — the full Proposition 6 attempt for an SVbTV instance
    with [Δ_in = ∅] (the proposition transfers the proof on the original
    domain; combine with the SVuDC routes for enlargement, as §IV-B
    suggests). *)
let prop6 t (p : Problem.svbtv) =
  let run () =
    let same_domain =
      Cv_interval.Box.equal p.Problem.new_din t.din
      || Cv_interval.Box.subset_tol p.Problem.new_din t.din
    in
    if not same_domain then
      ( Report.Inconclusive
          "domain enlarged: Prop 6 applies to the original domain only",
        "" )
    else if not (proves t ~dout:(Svbtv.dout p)) then
      (Report.Inconclusive "abstraction pair does not prove the property", "")
    else if reuses t p.Problem.new_net then
      (Report.Safe, "f' is dominated by the stored abstraction pair")
    else (Report.Inconclusive "f' escapes the stored abstraction", "")
  in
  let (outcome, detail), wall = Cv_util.Timer.time run in
  { Report.name = "prop6";
    outcome;
    timing = Report.sequential_timing wall;
    detail }

(** [prop6_interval ~slack p] — the weight-interval variant: build the
    interval abstraction of the {e old} network with the given slack,
    check it proves the property on the original domain, then test
    parameter containment of f'. *)
let prop6_interval ~slack (p : Problem.svbtv) =
  let run () =
    let old_prop = p.Problem.artifact.Cv_artifacts.Artifacts.property in
    let abs = Cv_netabs.Interval_abs.build ~slack p.Problem.old_net in
    let same_domain =
      Cv_interval.Box.subset_tol p.Problem.new_din
        old_prop.Cv_verify.Property.din
    in
    if not same_domain then
      ( Report.Inconclusive
          "domain enlarged: interval Prop 6 applies to the original domain only",
        "" )
    else if
      not
        (Cv_netabs.Interval_abs.proves_safety abs
           ~din:old_prop.Cv_verify.Property.din
           ~dout:old_prop.Cv_verify.Property.dout)
    then
      ( Report.Inconclusive
          (Printf.sprintf "interval abstraction (slack %.3g) too coarse" slack),
        "" )
    else if Cv_netabs.Interval_abs.contains abs p.Problem.new_net then
      (Report.Safe, Printf.sprintf "f' within ±%.3g of f everywhere" slack)
    else
      ( Report.Inconclusive
          (Printf.sprintf "f' drifted beyond slack (%.4g > %.4g)"
             (Cv_netabs.Interval_abs.max_slack p.Problem.old_net p.Problem.new_net)
             slack),
        "" )
  in
  let (outcome, detail), wall = Cv_util.Timer.time run in
  { Report.name = "prop6-interval";
    outcome;
    timing = Report.sequential_timing wall;
    detail }
