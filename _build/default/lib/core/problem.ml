(** The two continuous-verification problems of the paper.

    Both assume the property [φ(f, D_in, D_out)] has already been proved
    and its proof artifacts are available:

    - {b SVuDC} (Problem 2) — Safety Verification under Domain Change:
      same network, enlarged input domain [D_in ∪ Δ_in].
    - {b SVbTV} (Problem 1) — Safety Verification between Two Versions:
      fine-tuned network [f'], possibly together with a domain
      enlargement.

    [Δ_in] is represented by the enlarged bounding box [new_din ⊇ D_in]
    (exactly the monitored-bounds representation of the paper's
    experiment); the SVuDC sub-case with [Δ_in = ∅] is [new_din =
    D_in]. *)

type svudc = {
  net : Cv_nn.Network.t;  (** the verified network f *)
  artifact : Cv_artifacts.Artifacts.t;  (** proof of φ(f, D_in, D_out) *)
  new_din : Cv_interval.Box.t;  (** D_in ∪ Δ_in *)
}

type svbtv = {
  old_net : Cv_nn.Network.t;  (** f *)
  new_net : Cv_nn.Network.t;  (** f', fine-tuned from f *)
  artifact : Cv_artifacts.Artifacts.t;  (** proof of φ(f, D_in, D_out) *)
  new_din : Cv_interval.Box.t;  (** D_in ∪ Δ_in (= D_in when only parameters changed) *)
}

(** [svudc ~net ~artifact ~new_din] validates and builds an SVuDC
    instance. *)
let svudc ~net ~artifact ~new_din =
  if not (Cv_artifacts.Artifacts.matches artifact net) then
    invalid_arg "Problem.svudc: artifact was not produced for this network";
  let old_din = artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.din in
  if not (Cv_interval.Box.subset_tol old_din new_din) then
    invalid_arg "Problem.svudc: new domain must contain the original D_in";
  { net; artifact; new_din }

(** [svbtv ~old_net ~new_net ~artifact ~new_din] validates and builds an
    SVbTV instance. *)
let svbtv ~old_net ~new_net ~artifact ~new_din =
  if not (Cv_artifacts.Artifacts.matches artifact old_net) then
    invalid_arg "Problem.svbtv: artifact was not produced for old_net";
  if not (Cv_nn.Network.same_shape old_net new_net) then
    invalid_arg "Problem.svbtv: networks differ in shape";
  let old_din = artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.din in
  if not (Cv_interval.Box.subset_tol old_din new_din) then
    invalid_arg "Problem.svbtv: new domain must contain the original D_in";
  { old_net; new_net; artifact; new_din }

(** [svudc_property p] is the target property [φ(f, D_in ∪ Δ_in,
    D_out)]. *)
let svudc_property (p : svudc) =
  { p.artifact.Cv_artifacts.Artifacts.property with
    Cv_verify.Property.din = p.new_din }

(** [svbtv_property p] is the target property [φ(f', D_in ∪ Δ_in,
    D_out)]. *)
let svbtv_property (p : svbtv) =
  { p.artifact.Cv_artifacts.Artifacts.property with
    Cv_verify.Property.din = p.new_din }

(** [drift p] is the ∞-norm parameter distance between the two versions
    of an SVbTV instance — how hard fine-tuning shook the network. *)
let drift (p : svbtv) = Cv_nn.Network.param_dist_inf p.old_net p.new_net
