lib/core/specchange.ml: Cv_artifacts Cv_interval Cv_lipschitz Cv_nn Cv_util Cv_verify List Option Printf Report Strategy
