lib/core/report.ml: Cv_verify Format List Printf
