lib/core/fixer.mli: Cv_domains Cv_verify Problem Report
