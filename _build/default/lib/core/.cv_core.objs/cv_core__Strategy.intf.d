lib/core/strategy.mli: Cv_artifacts Cv_domains Cv_lipschitz Cv_nn Cv_verify Netabs_reuse Problem Report
