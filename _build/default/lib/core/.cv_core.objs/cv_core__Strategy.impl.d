lib/core/strategy.ml: Array Cv_artifacts Cv_domains Cv_interval Cv_lipschitz Cv_nn Cv_util Cv_verify Diff_reuse Fixer Float List Netabs_reuse Problem Report Svbtv Svudc
