lib/core/session.mli: Cv_artifacts Cv_interval Cv_linalg Cv_monitor Cv_nn Cv_verify Netabs_reuse Report Strategy
