lib/core/problem.mli: Cv_artifacts Cv_interval Cv_nn Cv_verify
