lib/core/diff_reuse.ml: Cv_artifacts Cv_diffverify Cv_interval Cv_lipschitz Cv_util Cv_verify Printf Problem Report
