lib/core/problem.ml: Cv_artifacts Cv_interval Cv_nn Cv_verify
