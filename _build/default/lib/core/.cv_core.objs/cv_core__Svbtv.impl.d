lib/core/svbtv.ml: Array Cv_artifacts Cv_domains Cv_interval Cv_nn Cv_util Cv_verify Float List Printf Problem Report String Svudc
