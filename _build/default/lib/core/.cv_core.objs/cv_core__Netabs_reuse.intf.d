lib/core/netabs_reuse.mli: Cv_domains Cv_interval Cv_netabs Cv_nn Problem Report
