lib/core/svbtv.mli: Cv_interval Cv_verify Problem Report
