lib/core/svudc.mli: Cv_domains Cv_interval Cv_lipschitz Cv_verify Problem Report
