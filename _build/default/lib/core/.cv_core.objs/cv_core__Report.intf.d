lib/core/report.mli: Cv_verify Format
