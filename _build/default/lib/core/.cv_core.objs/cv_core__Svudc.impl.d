lib/core/svudc.ml: Array Cv_artifacts Cv_domains Cv_interval Cv_lipschitz Cv_nn Cv_util Cv_verify Float List Option Printf Problem Report Seq String
