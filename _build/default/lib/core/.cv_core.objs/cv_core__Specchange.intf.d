lib/core/specchange.mli: Cv_artifacts Cv_interval Cv_lipschitz Cv_nn Cv_verify Report Strategy
