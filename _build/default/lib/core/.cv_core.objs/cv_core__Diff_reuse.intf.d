lib/core/diff_reuse.mli: Cv_lipschitz Problem Report
