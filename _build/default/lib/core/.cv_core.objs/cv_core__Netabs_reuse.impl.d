lib/core/netabs_reuse.ml: Array Cv_artifacts Cv_domains Cv_interval Cv_linalg Cv_netabs Cv_nn Cv_util Cv_verify Option Printf Problem Report Svbtv
