lib/core/session.ml: Array Cv_artifacts Cv_domains Cv_interval Cv_lipschitz Cv_monitor Cv_nn Cv_verify List Option Printf Problem Report Specchange Strategy
