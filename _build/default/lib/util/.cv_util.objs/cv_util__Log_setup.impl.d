lib/util/log_setup.ml: Logs
