lib/util/stats.mli:
