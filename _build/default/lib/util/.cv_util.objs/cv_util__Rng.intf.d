lib/util/rng.mli:
