lib/util/float_utils.ml: Array Float
