lib/util/parallel.mli:
