lib/util/timer.mli:
