lib/util/json.ml: Array Buffer Char Float Format List Printf String
