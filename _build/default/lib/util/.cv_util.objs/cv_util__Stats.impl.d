lib/util/stats.ml: Array Float Float_utils
