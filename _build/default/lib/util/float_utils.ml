(** Floating-point helpers shared across the code base.

    All numeric code in contiver runs on IEEE doubles with explicit
    tolerances (the repo vendors its own LP/MILP solvers, see DESIGN.md);
    the helpers here centralize the comparison conventions. *)

(** Default absolute tolerance used by solvers and tests. *)
let eps = 1e-7

(** [approx_eq ?tol a b] is true when [a] and [b] differ by at most [tol]
    (default {!eps}) in absolute terms, or by [tol] relative to the larger
    magnitude for large numbers. *)
let approx_eq ?(tol = eps) a b =
  let d = Float.abs (a -. b) in
  d <= tol || d <= tol *. Float.max (Float.abs a) (Float.abs b)

(** [leq ?tol a b] is [a <= b] up to tolerance: true when [a <= b +. tol]. *)
let leq ?(tol = eps) a b = a <= b +. tol

(** [geq ?tol a b] is [a >= b] up to tolerance. *)
let geq ?(tol = eps) a b = a >= b -. tol

(** [clamp ~lo ~hi x] restricts [x] to the closed interval [[lo, hi]]. *)
let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

(** [is_finite x] is true when [x] is neither NaN nor infinite. *)
let is_finite x = Float.is_finite x

(** Relu on a scalar. *)
let relu x = if x > 0. then x else 0.

(** [lerp a b t] linearly interpolates between [a] (t=0) and [b] (t=1). *)
let lerp a b t = a +. ((b -. a) *. t)

(** [sum xs] sums a float array with left-to-right accumulation. *)
let sum xs = Array.fold_left ( +. ) 0. xs

(** [max_abs xs] is the largest absolute value in [xs]; 0 for the empty
    array. *)
let max_abs xs = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. xs

(** [sign x] is [-1.], [0.] or [1.]. *)
let sign x = if x > 0. then 1. else if x < 0. then -1. else 0.
