(** Floating-point helpers shared across the code base. All numeric code
    runs on IEEE doubles with explicit tolerances; these helpers
    centralise the comparison conventions. *)

(** Default absolute tolerance used by solvers and tests. *)
val eps : float

(** [approx_eq ?tol a b] — absolute (or, for large magnitudes, relative)
    approximate equality; default tolerance {!eps}. *)
val approx_eq : ?tol:float -> float -> float -> bool

(** [leq ?tol a b] is [a <= b] up to tolerance. *)
val leq : ?tol:float -> float -> float -> bool

(** [geq ?tol a b] is [a >= b] up to tolerance. *)
val geq : ?tol:float -> float -> float -> bool

val clamp : lo:float -> hi:float -> float -> float

val is_finite : float -> bool

val relu : float -> float

(** [lerp a b t] linearly interpolates between [a] (t=0) and [b]
    (t=1). *)
val lerp : float -> float -> float -> float

val sum : float array -> float

(** [max_abs xs] is the largest absolute value; 0 for the empty
    array. *)
val max_abs : float array -> float

(** [sign x] is [-1.], [0.] or [1.]. *)
val sign : float -> float
