(** Small descriptive-statistics helpers used by the experiment harness
    and by dataset generation. *)

(** [mean xs] is the arithmetic mean; 0 for the empty array. *)
let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

(** [variance xs] is the population variance. *)
let variance xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. float_of_int n

(** [stddev xs] is the population standard deviation. *)
let stddev xs = sqrt (variance xs)

(** [min_max xs] is [(min, max)] of the non-empty array [xs]. *)
let min_max xs =
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

(** [percentile p xs] is the [p]-th percentile (0..100) using linear
    interpolation between order statistics; [xs] need not be sorted. *)
let percentile p xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 0 then 0.
  else if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    Float_utils.lerp sorted.(lo) sorted.(hi) frac
  end

(** [median xs] is the 50th percentile. *)
let median xs = percentile 50. xs

(** [mse ys yhat] is the mean squared error between two equally sized
    arrays. *)
let mse ys yhat =
  let n = Array.length ys in
  if n = 0 then 0.
  else begin
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let d = ys.(i) -. yhat.(i) in
      acc := !acc +. (d *. d)
    done;
    !acc /. float_of_int n
  end
