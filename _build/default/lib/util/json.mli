(** Minimal self-contained JSON representation, printer and parser
    (vendored — the container has no yojson). All numbers are floats;
    the writer encodes non-finite floats as the strings "nan", "inf",
    "-inf" and the parser maps them back. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Raised by {!parse} and the accessor functions on malformed input. *)
exception Error of string

(** [to_string j] renders compact (single-line) JSON. *)
val to_string : t -> string

(** [to_buffer buf j] appends compact JSON for [j] to [buf]. *)
val to_buffer : Buffer.t -> t -> unit

(** [parse s] parses a complete JSON document; raises {!Error} on
    malformed input or trailing garbage. *)
val parse : string -> t

(** [member key j] looks up [key] in an object; raises {!Error} when [j]
    is not an object or the key is absent. *)
val member : string -> t -> t

(** [member_opt key j] is [Some v] when [j] is an object containing
    [key]. *)
val member_opt : string -> t -> t option

val to_float : t -> float

val to_int : t -> int

val to_str : t -> string

val to_bool : t -> bool

val to_list : t -> t list

(** [float_array j] extracts a JSON array of numbers. *)
val float_array : t -> float array

(** [of_float_array a] encodes a float array as a JSON array. *)
val of_float_array : float array -> t

(** [of_int n] encodes an integer. *)
val of_int : int -> t
