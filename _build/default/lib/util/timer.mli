(** Wall-clock timing used to produce the Table I style "incremental
    time / original time" ratios. *)

(** [time f] runs [f ()] and returns [(result, elapsed_seconds)]. *)
val time : (unit -> 'a) -> 'a * float

(** [time_only f] runs [f ()] for effect and returns elapsed seconds. *)
val time_only : (unit -> 'a) -> float

(** [repeat_median ~runs f] runs [f] repeatedly and returns the last
    result with the median elapsed time. *)
val repeat_median : runs:int -> (unit -> 'a) -> 'a * float
