(** Deterministic pseudo-random number generation.

    Every stochastic component in the repo (weight initialisation, dataset
    synthesis, sampling-based falsification, property tests) draws from an
    explicit [Rng.t] so experiments are reproducible from a seed recorded
    in EXPERIMENTS.md. Wraps [Random.State] with the distributions we
    need. *)

type t = Random.State.t

(** [create seed] makes a fresh generator from an integer seed. *)
let create seed = Random.State.make [| seed |]

(** [split rng] derives an independent generator; the parent advances. *)
let split rng =
  let seed = Random.State.bits rng in
  Random.State.make [| seed; Random.State.bits rng |]

(** [float rng ~lo ~hi] draws uniformly from [[lo, hi)]. *)
let float rng ~lo ~hi = lo +. Random.State.float rng (hi -. lo)

(** [int rng n] draws uniformly from [[0, n)]. *)
let int rng n = Random.State.int rng n

(** [bool rng] draws a fair coin. *)
let bool rng = Random.State.bool rng

(** [gaussian rng ~mu ~sigma] draws from a normal distribution using the
    Box-Muller transform. *)
let gaussian rng ~mu ~sigma =
  let u1 = Float.max 1e-12 (Random.State.float rng 1.0) in
  let u2 = Random.State.float rng 1.0 in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

(** [uniform_array rng n ~lo ~hi] draws [n] independent uniforms. *)
let uniform_array rng n ~lo ~hi = Array.init n (fun _ -> float rng ~lo ~hi)

(** [gaussian_array rng n ~mu ~sigma] draws [n] independent normals. *)
let gaussian_array rng n ~mu ~sigma =
  Array.init n (fun _ -> gaussian rng ~mu ~sigma)

(** [shuffle rng a] permutes [a] in place (Fisher-Yates). *)
let shuffle rng a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** [choice rng a] picks a uniform element of the non-empty array [a]. *)
let choice rng a = a.(Random.State.int rng (Array.length a))
