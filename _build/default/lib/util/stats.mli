(** Small descriptive-statistics helpers used by the experiment harness
    and dataset generation. *)

(** [mean xs] is the arithmetic mean; 0 for the empty array. *)
val mean : float array -> float

(** [variance xs] is the population variance. *)
val variance : float array -> float

val stddev : float array -> float

(** [min_max xs] is [(min, max)] of the non-empty array [xs]. *)
val min_max : float array -> float * float

(** [percentile p xs] is the [p]-th percentile (0..100) with linear
    interpolation; [xs] need not be sorted. *)
val percentile : float -> float array -> float

val median : float array -> float

(** [mse ys yhat] is the mean squared error of two equal-length
    arrays. *)
val mse : float array -> float array -> float
