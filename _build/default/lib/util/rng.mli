(** Deterministic pseudo-random number generation. Every stochastic
    component draws from an explicit [Rng.t] so experiments are
    reproducible from a recorded seed. *)

type t

(** [create seed] makes a fresh generator from an integer seed. *)
val create : int -> t

(** [split rng] derives an independent generator; the parent advances. *)
val split : t -> t

(** [float rng ~lo ~hi] draws uniformly from [[lo, hi)]. *)
val float : t -> lo:float -> hi:float -> float

(** [int rng n] draws uniformly from [[0, n)]. *)
val int : t -> int -> int

val bool : t -> bool

(** [gaussian rng ~mu ~sigma] draws from a normal distribution
    (Box-Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float

val uniform_array : t -> int -> lo:float -> hi:float -> float array

val gaussian_array : t -> int -> mu:float -> sigma:float -> float array

(** [shuffle rng a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [choice rng a] picks a uniform element of the non-empty array
    [a]. *)
val choice : t -> 'a array -> 'a
