(** Logging configuration shared by the executables.

    Libraries log through their own [Logs.src]; executables call
    {!init} once to install a reporter on stderr. *)

(** The top-level source used by the CLI itself. *)
let src = Logs.Src.create "contiver" ~doc:"Continuous NN verification"

module Log = (val Logs.src_log src : Logs.LOG)

(** [init ?level ()] installs an [Fmt]-based reporter and sets the global
    level (default [Warning] so library internals stay quiet unless
    asked). *)
let init ?(level = Logs.Warning) () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some level)
