(** Closed real intervals [[lo, hi]] — the basic carrier of every state
    abstraction in the repo. Invariant: [lo <= hi] for non-empty
    intervals; the empty interval is represented explicitly by
    {!empty}. *)

type t

(** [make lo hi] builds an interval; raises [Invalid_argument] when
    [lo > hi] or either bound is NaN. *)
val make : float -> float -> t

(** [point x] is the degenerate interval [[x, x]]. *)
val point : float -> t

(** The empty interval. *)
val empty : t

(** [is_empty i] recognises {!empty}. *)
val is_empty : t -> bool

(** The whole real line. *)
val top : t

val lo : t -> float

val hi : t -> float

(** [width i] is [hi - lo]; 0 for empty intervals. *)
val width : t -> float

val center : t -> float

val radius : t -> float

(** [mem x i] tests membership (inclusive bounds). *)
val mem : float -> t -> bool

(** [mem_tol ?tol x i] tests membership with tolerance on both sides. *)
val mem_tol : ?tol:float -> float -> t -> bool

(** [subset a b] is true when [a ⊆ b]; the empty interval is a subset of
    everything. *)
val subset : t -> t -> bool

(** [subset_tol ?tol a b] is {!subset} with tolerance on both bounds of
    [b]. *)
val subset_tol : ?tol:float -> t -> t -> bool

(** [join a b] is the smallest interval containing both. *)
val join : t -> t -> t

(** [meet a b] is the intersection (possibly {!empty}). *)
val meet : t -> t -> t

val add : t -> t -> t

val neg : t -> t

val sub : t -> t -> t

(** [scale c a] multiplies by the scalar [c] (flipping bounds for
    negative [c]). *)
val scale : float -> t -> t

(** [shift c a] translates by the scalar [c]. *)
val shift : float -> t -> t

(** [mul a b] is the interval product (exact for intervals). *)
val mul : t -> t -> t

(** [relu a] is the image of [a] under [max(0, ·)]. *)
val relu : t -> t

(** [leaky_relu slope a] is the image under the leaky ReLU with the
    given negative-side slope. *)
val leaky_relu : float -> t -> t

(** [monotone_image f a] is the image of [a] under a monotone increasing
    function [f]. *)
val monotone_image : (float -> float) -> t -> t

(** [expand r a] grows the interval by [r >= 0] on both sides — the ℓκ
    enlargement of Proposition 3. *)
val expand : float -> t -> t

(** [dist_point x i] is the distance from [x] to the nearest point of
    [i]; 0 when [x ∈ i]. *)
val dist_point : float -> t -> float

(** [hausdorff_directed a b] is the one-sided Hausdorff distance
    [sup_{x∈a} dist(x, b)]. *)
val hausdorff_directed : t -> t -> float

(** [sample rng i] draws a uniform point of a non-empty bounded
    interval. *)
val sample : Cv_util.Rng.t -> t -> float

(** [split i] bisects at the midpoint into [(left, right)]. *)
val split : t -> t * t

(** [equal ?tol a b] is approximate equality of both bounds. *)
val equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val to_json : t -> Cv_util.Json.t

val of_json : Cv_util.Json.t -> t
