lib/interval/interval.ml: Cv_util Float Format Printf
