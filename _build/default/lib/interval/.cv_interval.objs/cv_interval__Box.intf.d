lib/interval/box.mli: Cv_linalg Cv_util Format Interval
