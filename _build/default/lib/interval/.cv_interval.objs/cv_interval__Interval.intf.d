lib/interval/interval.mli: Cv_util Format
