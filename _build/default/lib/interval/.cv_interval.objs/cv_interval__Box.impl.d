lib/interval/box.ml: Array Cv_linalg Cv_util Float Format Interval List String
