(** Closed real intervals [[lo, hi]].

    The basic carrier of every state abstraction in the repo: boxes are
    vectors of intervals, symbolic intervals concretise to intervals, and
    the MILP encoder takes its big-M bounds from interval analysis.
    Invariant: [lo <= hi] for non-empty intervals; the empty interval is
    represented explicitly by {!empty}. *)

type t = { lo : float; hi : float }

(** [make lo hi] builds an interval; raises [Invalid_argument] when
    [lo > hi] (beyond tolerance) or either bound is NaN. *)
let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then invalid_arg "Interval.make: NaN";
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo %g > hi %g" lo hi);
  { lo; hi }

(** [point x] is the degenerate interval [[x, x]]. *)
let point x = make x x

(** The empty interval (canonical representation [+inf, -inf]). *)
let empty = { lo = Float.infinity; hi = Float.neg_infinity }

(** [is_empty i] recognises {!empty}. *)
let is_empty i = i.lo > i.hi

(** The whole real line. *)
let top = { lo = Float.neg_infinity; hi = Float.infinity }

(** [lo i] is the lower bound. *)
let lo i = i.lo

(** [hi i] is the upper bound. *)
let hi i = i.hi

(** [width i] is [hi - lo]; 0 for empty intervals. *)
let width i = if is_empty i then 0. else i.hi -. i.lo

(** [center i] is the midpoint. *)
let center i = 0.5 *. (i.lo +. i.hi)

(** [radius i] is half the width. *)
let radius i = 0.5 *. width i

(** [mem x i] tests membership (inclusive bounds). *)
let mem x i = (not (is_empty i)) && x >= i.lo && x <= i.hi

(** [mem_tol ?tol x i] tests membership with tolerance [tol] on both
    sides — the form used when checking containment of float-computed
    reach sets in stored abstractions. *)
let mem_tol ?(tol = Cv_util.Float_utils.eps) x i =
  (not (is_empty i)) && x >= i.lo -. tol && x <= i.hi +. tol

(** [subset a b] is true when [a ⊆ b]. The empty interval is a subset of
    everything. *)
let subset a b = is_empty a || ((not (is_empty b)) && a.lo >= b.lo && a.hi <= b.hi)

(** [subset_tol ?tol a b] is {!subset} with tolerance [tol] on both
    bounds of [b]. *)
let subset_tol ?(tol = Cv_util.Float_utils.eps) a b =
  is_empty a
  || ((not (is_empty b)) && a.lo >= b.lo -. tol && a.hi <= b.hi +. tol)

(** [join a b] is the smallest interval containing both. *)
let join a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

(** [meet a b] is the intersection (possibly {!empty}). *)
let meet a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then empty else { lo; hi }

(** [add a b] is the Minkowski sum. *)
let add a b =
  if is_empty a || is_empty b then empty
  else { lo = a.lo +. b.lo; hi = a.hi +. b.hi }

(** [neg a] reflects the interval about 0. *)
let neg a = if is_empty a then empty else { lo = -.a.hi; hi = -.a.lo }

(** [sub a b] is [add a (neg b)]. *)
let sub a b = add a (neg b)

(** [scale c a] multiplies by the scalar [c] (flipping bounds for
    negative [c]). *)
let scale c a =
  if is_empty a then empty
  else if c >= 0. then { lo = c *. a.lo; hi = c *. a.hi }
  else { lo = c *. a.hi; hi = c *. a.lo }

(** [shift c a] translates by the scalar [c]. *)
let shift c a = if is_empty a then empty else { lo = a.lo +. c; hi = a.hi +. c }

(** [mul a b] is the interval product (exact for intervals). *)
let mul a b =
  if is_empty a || is_empty b then empty
  else begin
    let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
    let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
    { lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
      hi = Float.max (Float.max p1 p2) (Float.max p3 p4) }
  end

(** [relu a] is the image of [a] under [max(0, ·)]. *)
let relu a =
  if is_empty a then empty
  else { lo = Float.max 0. a.lo; hi = Float.max 0. a.hi }

(** [leaky_relu slope a] is the image under [x ↦ x if x>0 else slope*x]
    for [0 <= slope <= 1]. *)
let leaky_relu slope a =
  if is_empty a then empty
  else
    let f x = if x > 0. then x else slope *. x in
    { lo = f a.lo; hi = f a.hi }

(** [monotone_image f a] is the image of [a] under a monotone increasing
    function [f] — used for sigmoid/tanh transformers. *)
let monotone_image f a = if is_empty a then empty else { lo = f a.lo; hi = f a.hi }

(** [expand r a] grows the interval by [r >= 0] on both sides — the
    ℓ·κ enlargement of Proposition 3. *)
let expand r a =
  if r < 0. then invalid_arg "Interval.expand: negative radius";
  if is_empty a then empty else { lo = a.lo -. r; hi = a.hi +. r }

(** [dist_point x i] is the distance from [x] to the nearest point of
    [i]; 0 when [x ∈ i]. *)
let dist_point x i =
  if is_empty i then Float.infinity
  else if x < i.lo then i.lo -. x
  else if x > i.hi then x -. i.hi
  else 0.

(** [hausdorff_directed a b] is the one-sided Hausdorff distance
    [sup_{x∈a} dist(x, b)] — how far [a] sticks out of [b]. *)
let hausdorff_directed a b =
  if is_empty a then 0.
  else if is_empty b then Float.infinity
  else Float.max (dist_point a.lo b) (dist_point a.hi b)

(** [sample rng i] draws a uniform point of a non-empty bounded
    interval. *)
let sample rng i =
  if is_empty i then invalid_arg "Interval.sample: empty";
  if width i = 0. then i.lo else Cv_util.Rng.float rng ~lo:i.lo ~hi:i.hi

(** [split i] bisects at the midpoint into [(left, right)]. *)
let split i =
  let c = center i in
  ({ lo = i.lo; hi = c }, { lo = c; hi = i.hi })

(** [equal ?tol a b] is approximate equality of both bounds. *)
let equal ?tol a b =
  (is_empty a && is_empty b)
  || (Cv_util.Float_utils.approx_eq ?tol a.lo b.lo
     && Cv_util.Float_utils.approx_eq ?tol a.hi b.hi)

(** [pp ppf i] prints as [[lo, hi]]. *)
let pp ppf i =
  if is_empty i then Format.fprintf ppf "[empty]"
  else Format.fprintf ppf "[%.6g, %.6g]" i.lo i.hi

(** [to_string i] renders {!pp}. *)
let to_string i = Format.asprintf "%a" pp i

(** [to_json i] encodes as a two-element array. *)
let to_json i = Cv_util.Json.List [ Num i.lo; Num i.hi ]

(** [of_json j] decodes a two-element array as an interval. *)
let of_json j =
  match Cv_util.Json.to_list j with
  | [ Num lo; Num hi ] -> { lo; hi }
  | _ -> raise (Cv_util.Json.Error "Interval.of_json")
