(** Lipschitz-constant estimation for feed-forward networks.

    A Lipschitz constant ℓ with [|f(x₁) − f(x₂)| ≤ ℓ |x₁ − x₂|] is the
    third proof artifact the paper reuses (Proposition 3): upon domain
    enlargement quantified by κ, the output reach grows by at most ℓκ.

    Estimators, from cheapest/loosest to tighter:
    - the operator-norm product over layers (norm selectable);
    - an interval-aware refinement that, over a given input box, zeroes
      the rows of provably-inactive ReLUs and keeps only a [0,1]-scaled
      contribution for unstable ones (a Fast-Lip-style local bound).

    All estimators are {e sound upper bounds}; tests validate them
    against sampled difference quotients. *)

(** Vector norm used for both input and output spaces. *)
type norm = L1 | L2 | Linf

(** [norm_name n] is a printable label. *)
let norm_name = function L1 -> "L1" | L2 -> "L2" | Linf -> "Linf"

(** [vec_norm n v] evaluates the chosen norm on a vector. *)
let vec_norm = function
  | L1 -> Cv_linalg.Vec.norm1
  | L2 -> Cv_linalg.Vec.norm2
  | Linf -> Cv_linalg.Vec.norm_inf

(* Sound operator norm of a matrix for x-norm = y-norm = n. For L2 we
   must avoid the power-iteration underestimate, so we use
   sqrt(‖W‖₁‖W‖∞) which dominates the spectral norm. *)
let operator_norm n w =
  match n with
  | L1 -> Cv_linalg.Mat.norm1 w
  | Linf -> Cv_linalg.Mat.norm_inf w
  | L2 -> Cv_linalg.Mat.sqrt_norm1_norminf w

(** [spectral_estimate w] is the power-iteration estimate of ‖W‖₂ —
    {e not} a sound upper bound; exposed for diagnostics and tests. *)
let spectral_estimate w = Cv_linalg.Mat.spectral_norm w

(** [global ?norm net] is the product of per-layer operator norms times
    activation Lipschitz factors — the classic global bound. *)
let global ?(norm = Linf) net =
  Array.fold_left
    (fun acc (l : Cv_nn.Layer.t) ->
      acc
      *. operator_norm norm l.Cv_nn.Layer.weights
      *. Cv_nn.Activation.lipschitz l.Cv_nn.Layer.act)
    1.
    (Cv_nn.Network.layers net)

(* Interval-aware local refinement. Over the box, classify each ReLU
   neuron: inactive rows contribute nothing; active rows contribute
   fully; unstable rows contribute fully (slope ≤ 1 anyway). We rescale
   the layer's weight rows accordingly before taking the operator
   norm. *)
let local_layer_norm norm (l : Cv_nn.Layer.t) pre_box =
  let w = l.Cv_nn.Layer.weights in
  let rows = Cv_linalg.Mat.rows w in
  let scale_of i =
    let iv = Cv_interval.Box.get pre_box i in
    let lo = Cv_interval.Interval.lo iv and hi = Cv_interval.Interval.hi iv in
    match l.Cv_nn.Layer.act with
    | Cv_nn.Activation.Relu -> if hi <= 0. then 0. else 1.
    | Cv_nn.Activation.Leaky_relu s ->
      if hi <= 0. then Float.abs s
      else if lo >= 0. then 1.
      else Float.max 1. (Float.abs s)
    | Cv_nn.Activation.Sigmoid ->
      (* max |σ'| over [lo, hi]: σ' peaks at 0. *)
      if lo <= 0. && hi >= 0. then 0.25
      else
        let d x =
          let s = 1. /. (1. +. exp (-.x)) in
          s *. (1. -. s)
        in
        Float.max (d lo) (d hi)
    | Cv_nn.Activation.Tanh ->
      if lo <= 0. && hi >= 0. then 1.
      else
        let d x =
          let t = tanh x in
          1. -. (t *. t)
        in
        Float.max (d lo) (d hi)
    | Cv_nn.Activation.Identity -> 1.
  in
  let scaled =
    Cv_linalg.Mat.init rows (Cv_linalg.Mat.cols w) (fun i j ->
        scale_of i *. Cv_linalg.Mat.get w i j)
  in
  operator_norm norm scaled

(** [local ?norm net box] is the interval-aware bound over [box]: a
    valid Lipschitz constant for [f] restricted to [box], typically much
    tighter than {!global} when many neurons are provably inactive. *)
let local ?(norm = Linf) net box =
  let acc = ref 1. in
  let current = ref box in
  Array.iter
    (fun (l : Cv_nn.Layer.t) ->
      let pre = Cv_domains.Transformer.pre_activation_box l !current in
      acc := !acc *. local_layer_norm norm l pre;
      current := Array.map (Cv_nn.Activation.interval l.Cv_nn.Layer.act) pre)
    (Cv_nn.Network.layers net);
  !acc

(** [sampled_quotient ?samples ~rng ~norm net box] is the largest
    difference quotient |f(x)−f(y)|/|x−y| over random pairs in [box] — a
    {e lower} bound witness used by tests and the tightness ablation. *)
let sampled_quotient ?(samples = 500) ~rng ~norm net box =
  let best = ref 0. in
  for _ = 1 to samples do
    let x = Cv_interval.Box.sample rng box in
    let y = Cv_interval.Box.sample rng box in
    let dx = vec_norm norm (Cv_linalg.Vec.sub x y) in
    if dx > 1e-12 then begin
      let dy =
        vec_norm norm
          (Cv_linalg.Vec.sub (Cv_nn.Network.eval net x) (Cv_nn.Network.eval net y))
      in
      best := Float.max !best (dy /. dx)
    end
  done;
  !best

(** [kappa ~norm ~old_box ~new_box] is the paper's κ: a bound on the
    distance from any point of the enlarged domain to the original
    domain. *)
let kappa ~norm ~old_box ~new_box =
  let n = match norm with L2 -> `L2 | L1 | Linf -> `Linf in
  let k = Cv_interval.Box.enlargement_kappa ~norm:n ~old_box ~new_box in
  match norm with
  | L1 ->
    (* ∞-norm overhang per axis summed is a sound L1 bound. *)
    let ov =
      Array.init (Cv_interval.Box.dim old_box) (fun i ->
          let o = Cv_interval.Box.get new_box i
          and b = Cv_interval.Box.get old_box i in
          Float.max
            (Float.max 0. (Cv_interval.Interval.lo b -. Cv_interval.Interval.lo o))
            (Float.max 0. (Cv_interval.Interval.hi o -. Cv_interval.Interval.hi b)))
    in
    Cv_util.Float_utils.sum ov
  | L2 | Linf -> k
