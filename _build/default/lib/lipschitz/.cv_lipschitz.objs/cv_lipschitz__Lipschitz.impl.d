lib/lipschitz/lipschitz.ml: Array Cv_domains Cv_interval Cv_linalg Cv_nn Cv_util Float
