(** Lipschitz-constant estimation for feed-forward networks — the third
    proof artifact the paper reuses (Proposition 3). All estimators are
    sound upper bounds. *)

(** Vector norm used for both input and output spaces. *)
type norm = L1 | L2 | Linf

(** [norm_name n] is a printable label ("L1", "L2", "Linf"). *)
val norm_name : norm -> string

(** [vec_norm n v] evaluates the chosen norm on a vector. *)
val vec_norm : norm -> Cv_linalg.Vec.t -> float

(** [spectral_estimate w] is the power-iteration estimate of ‖W‖₂ —
    {e not} a sound upper bound; exposed for diagnostics and tests. *)
val spectral_estimate : Cv_linalg.Mat.t -> float

(** [global ?norm net] is the product of per-layer operator norms times
    activation Lipschitz factors — the classic global bound (default
    norm: ∞). *)
val global : ?norm:norm -> Cv_nn.Network.t -> float

(** [local ?norm net box] is the interval-aware bound over [box]: a
    valid Lipschitz constant for [f] restricted to [box], typically
    tighter than {!global} when many neurons are provably inactive. *)
val local : ?norm:norm -> Cv_nn.Network.t -> Cv_interval.Box.t -> float

(** [sampled_quotient ?samples ~rng ~norm net box] is the largest
    difference quotient over random pairs in [box] — a {e lower} bound
    witness used by tests and the tightness ablation. *)
val sampled_quotient :
  ?samples:int ->
  rng:Cv_util.Rng.t ->
  norm:norm ->
  Cv_nn.Network.t ->
  Cv_interval.Box.t ->
  float

(** [kappa ~norm ~old_box ~new_box] is the paper's κ: a bound on the
    distance from any point of the enlarged domain to the original
    domain. *)
val kappa :
  norm:norm -> old_box:Cv_interval.Box.t -> new_box:Cv_interval.Box.t -> float
