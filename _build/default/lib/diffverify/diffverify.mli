(** Differential interval verification of two network versions, in the
    spirit of ReluDiff (the paper's ref [20]): track a sound box of the
    old activations and a sound box of the per-neuron {e difference}
    through the layers, giving bounds on [f'(x) − f(x)] far tighter than
    subtracting independently computed reaches. *)

type layer_delta = {
  old_box : Cv_interval.Box.t;  (** bounds of the old activations *)
  delta : Cv_interval.Box.t;  (** bounds of (new − old) activations *)
}

(** [analyze ~old_net ~new_net box] runs the differential analysis and
    returns the per-layer records. Raises [Invalid_argument] on shape
    mismatch. *)
val analyze :
  old_net:Cv_nn.Network.t ->
  new_net:Cv_nn.Network.t ->
  Cv_interval.Box.t ->
  layer_delta array

(** [output_delta ~old_net ~new_net box] is a box around 0 containing
    [f'(x) − f(x)] for every [x] in [box]. *)
val output_delta :
  old_net:Cv_nn.Network.t ->
  new_net:Cv_nn.Network.t ->
  Cv_interval.Box.t ->
  Cv_interval.Box.t

(** [max_output_delta ~old_net ~new_net box] is the scalar ε with
    [‖f' − f‖_∞ ≤ ε] over the box. *)
val max_output_delta :
  old_net:Cv_nn.Network.t -> new_net:Cv_nn.Network.t -> Cv_interval.Box.t -> float

(** [naive_bound ~old_net ~new_net box] is the non-differential
    baseline: interval subtraction of the two independently computed
    reach boxes — always at least as loose as {!output_delta}; the
    ablation bench quantifies the gap. *)
val naive_bound :
  old_net:Cv_nn.Network.t ->
  new_net:Cv_nn.Network.t ->
  Cv_interval.Box.t ->
  Cv_interval.Interval.t array
