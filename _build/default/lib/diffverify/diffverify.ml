(** Differential interval verification of two network versions, in the
    spirit of ReluDiff (Paulsen, Wang, Wang — ICSE 2020), which the
    paper discusses as the closest related problem ("check the
    difference of two DNNs").

    Given two same-shaped networks [f] (old) and [f'] (fine-tuned) and
    an input box, we propagate, layer by layer:

    - a sound box [A_i] of the {e old} network's activations (symbolic
      intervals, concretised per layer), and
    - a sound box [Δ_i] of the {e difference} [a'_i − a_i].

    The pre-activation difference obeys
    [z' − z = (W' − W)·a + W'·δ + (b' − b)], evaluated in interval
    arithmetic; the ReLU difference is bounded by the meet of
    (1) the interval difference of the two ReLU images and
    (2) the 1-Lipschitz bound [|relu z' − relu z| ≤ |z' − z|],
    sharpened by the stable-sign cases (both active: [δ] passes through;
    both inactive: exactly 0).

    The headline query: [output_delta] bounds [max |f'(x) − f(x)|] over
    the box — directly useful for SVbTV, since the old proof's output
    reach inflated by that bound must still fit [D_out]
    (see {!Cv_core.Diff_reuse}). *)

type layer_delta = {
  old_box : Cv_interval.Box.t;  (** bounds of the old activations *)
  delta : Cv_interval.Box.t;  (** bounds of (new − old) activations *)
}

(* Interval evaluation of (ΔW)·A + W'·Δ + Δb, per output neuron. *)
let pre_delta ~w_old ~w_new ~db (a : Cv_interval.Box.t) (d : Cv_interval.Box.t) =
  let rows = Cv_linalg.Mat.rows w_old and cols = Cv_linalg.Mat.cols w_old in
  Array.init rows (fun i ->
      let acc = ref (Cv_interval.Interval.point db.(i)) in
      for j = 0 to cols - 1 do
        let dw = Cv_linalg.Mat.get w_new i j -. Cv_linalg.Mat.get w_old i j in
        if dw <> 0. then
          acc :=
            Cv_interval.Interval.add !acc
              (Cv_interval.Interval.scale dw (Cv_interval.Box.get a j));
        let wn = Cv_linalg.Mat.get w_new i j in
        if wn <> 0. then
          acc :=
            Cv_interval.Interval.add !acc
              (Cv_interval.Interval.scale wn (Cv_interval.Box.get d j))
      done;
      !acc)

(* Difference bound through an activation, per neuron:
   z (old pre-act interval), dz (pre-act difference interval). *)
let act_delta act z dz =
  let z' = Cv_interval.Interval.add z dz in
  let img = Cv_nn.Activation.interval act z in
  let img' = Cv_nn.Activation.interval act z' in
  (* (1) interval difference of images. *)
  let by_images = Cv_interval.Interval.sub img' img in
  (* (2) Lipschitz transfer: |act z' − act z| ≤ L·|dz|. *)
  let ell = Cv_nn.Activation.lipschitz act in
  let m =
    ell
    *. Float.max
         (Float.abs (Cv_interval.Interval.lo dz))
         (Float.abs (Cv_interval.Interval.hi dz))
  in
  let by_lipschitz = Cv_interval.Interval.make (-.m) m in
  let coarse = Cv_interval.Interval.meet by_images by_lipschitz in
  match act with
  | Cv_nn.Activation.Relu ->
    (* Stable-sign sharpening. *)
    if
      Cv_interval.Interval.lo z >= 0. && Cv_interval.Interval.lo z' >= 0.
    then dz
    else if
      Cv_interval.Interval.hi z <= 0. && Cv_interval.Interval.hi z' <= 0.
    then Cv_interval.Interval.point 0.
    else coarse
  | _ -> coarse

(** [analyze ~old_net ~new_net box] runs the differential analysis and
    returns the per-layer records (old-activation bounds and difference
    bounds). Raises [Invalid_argument] on shape mismatch. *)
let analyze ~old_net ~new_net box =
  if not (Cv_nn.Network.same_shape old_net new_net) then
    invalid_arg "Diffverify.analyze: networks differ in shape";
  if Cv_interval.Box.dim box <> Cv_nn.Network.in_dim old_net then
    invalid_arg "Diffverify.analyze: box dimension";
  let n = Cv_nn.Network.num_layers old_net in
  let result = Array.make n { old_box = [||]; delta = [||] } in
  (* Old activations tracked relationally (symbolic intervals) for
     tighter per-layer boxes. *)
  let sym = ref (Cv_domains.Symint.of_box box) in
  let delta = ref (Array.map (fun _ -> Cv_interval.Interval.point 0.)
                     (Array.make (Cv_interval.Box.dim box) ())) in
  let prev_old_box = ref box in
  for i = 0 to n - 1 do
    let lo = Cv_nn.Network.layer old_net i in
    let ln = Cv_nn.Network.layer new_net i in
    let pre_sym =
      Cv_domains.Symint.affine lo.Cv_nn.Layer.weights lo.Cv_nn.Layer.bias !sym
    in
    let z_box = Cv_domains.Symint.to_box pre_sym in
    let db =
      Cv_linalg.Vec.sub ln.Cv_nn.Layer.bias lo.Cv_nn.Layer.bias
    in
    let dz =
      pre_delta ~w_old:lo.Cv_nn.Layer.weights ~w_new:ln.Cv_nn.Layer.weights
        ~db !prev_old_box !delta
    in
    let post_delta =
      Array.init (Cv_nn.Layer.out_dim lo) (fun r ->
          act_delta lo.Cv_nn.Layer.act (Cv_interval.Box.get z_box r) dz.(r))
    in
    sym := Cv_domains.Symint.apply_layer lo !sym;
    let old_box = Cv_domains.Symint.to_box !sym in
    result.(i) <- { old_box; delta = post_delta };
    prev_old_box := old_box;
    delta := post_delta
  done;
  result

(** [output_delta ~old_net ~new_net box] is the per-output difference
    bound [Δ_n] — a box around 0 containing [f'(x) − f(x)] for every
    [x] in [box]. *)
let output_delta ~old_net ~new_net box =
  let layers = analyze ~old_net ~new_net box in
  layers.(Array.length layers - 1).delta

(** [max_output_delta ~old_net ~new_net box] is the scalar
    [max_i max(|lo Δ_i|, |hi Δ_i|)] — the ε such that
    [‖f' − f‖_∞ ≤ ε] over the box. *)
let max_output_delta ~old_net ~new_net box =
  Array.fold_left
    (fun acc iv ->
      Float.max acc
        (Float.max
           (Float.abs (Cv_interval.Interval.lo iv))
           (Float.abs (Cv_interval.Interval.hi iv))))
    0.
    (output_delta ~old_net ~new_net box)

(** [naive_bound ~old_net ~new_net box] is the non-differential
    baseline: reach(f') ⊖ reach(f) by plain interval subtraction of the
    two independently computed reach boxes — what one gets {e without}
    tracking the difference. Always at least as loose as
    {!output_delta}; the ablation bench quantifies the gap. *)
let naive_bound ~old_net ~new_net box =
  let r_old = Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint old_net box in
  let r_new = Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint new_net box in
  Array.init (Cv_interval.Box.dim r_old) (fun i ->
      Cv_interval.Interval.sub
        (Cv_interval.Box.get r_new i)
        (Cv_interval.Box.get r_old i))
