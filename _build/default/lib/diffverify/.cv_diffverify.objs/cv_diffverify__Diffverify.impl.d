lib/diffverify/diffverify.ml: Array Cv_domains Cv_interval Cv_linalg Cv_nn Float
