lib/diffverify/diffverify.mli: Cv_interval Cv_nn
