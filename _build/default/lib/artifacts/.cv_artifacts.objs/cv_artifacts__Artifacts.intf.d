lib/artifacts/artifacts.mli: Cv_interval Cv_nn Cv_util Cv_verify
