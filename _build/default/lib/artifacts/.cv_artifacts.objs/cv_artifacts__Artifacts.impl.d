lib/artifacts/artifacts.ml: Array Buffer Cv_interval Cv_linalg Cv_nn Cv_util Cv_verify Digest Fun List Option Printf String
