(** Abstraction-based runtime monitoring of neuron values.

    Mirrors the paper's setup (and its refs [1], [2]): the input bound
    [D_in] of the verified head is built by recording per-neuron min/max
    of the monitored feature layer over the training set, plus a buffer;
    in operation, every input whose features escape the box is an
    out-of-distribution event, and the recorded overshoots form [Δ_in]
    for the next verification round. *)

type event = {
  features : Cv_linalg.Vec.t;  (** the violating feature vector *)
  overshoot : float;  (** ∞-norm distance outside the current box *)
  index : int;  (** running sample counter at detection time *)
}

type t = {
  mutable box : Cv_interval.Box.t;  (** current monitored bound, [D_in] *)
  mutable seen : int;
  mutable events : event list;  (** most recent first *)
}

(** [of_samples ?buffer features] builds the initial [D_in]: the
    bounding box of the observed feature vectors, enlarged by [buffer]
    (fraction of each axis width; default 0.05 — the paper's
    "additional buffers"). *)
let of_samples ?(buffer = 0.05) features =
  match features with
  | [] -> invalid_arg "Monitor.of_samples: no samples"
  | first :: rest ->
    let box = ref (Cv_interval.Box.point first) in
    List.iter (fun x -> box := Cv_interval.Box.join_point !box x) rest;
    { box = Cv_interval.Box.buffer buffer !box; seen = 0; events = [] }

(** [of_box box] starts monitoring from a given bound. *)
let of_box box = { box; seen = 0; events = [] }

(** [current t] is the monitored box (the verified [D_in]). *)
let current t = t.box

(** [events t] lists recorded out-of-distribution events, newest
    first. *)
let events t = List.rev t.events

(** [event_count t] is the number of OOD events so far. *)
let event_count t = List.length t.events

(** [observe t x] feeds one feature vector. In-distribution vectors
    return [None]; out-of-distribution vectors are recorded and returned
    as an event. The monitored box is {e not} changed — enlargement is an
    explicit engineering step ({!enlarged_box}). *)
let observe t x =
  t.seen <- t.seen + 1;
  if Cv_interval.Box.mem x t.box then None
  else begin
    let ev =
      { features = Array.copy x;
        overshoot = Cv_interval.Box.dist_point_inf x t.box;
        index = t.seen }
    in
    t.events <- ev :: t.events;
    Some ev
  end

(** [enlarged_box ?margin t] is [D_in ∪ Δ_in] as a box: the monitored
    box joined with every recorded event point, each padded by [margin]
    (absolute, default 0) so the enlargement is robust to measurement
    noise. *)
let enlarged_box ?(margin = 0.) t =
  List.fold_left
    (fun box ev ->
      Cv_interval.Box.join box
        (Cv_interval.Box.of_center_radius ev.features margin))
    t.box t.events

(** [commit t box] installs an enlarged box (after re-verification
    succeeded) and clears the event log — one turn of the paper's
    continuous-engineering loop. *)
let commit t box =
  if not (Cv_interval.Box.subset t.box box) then
    invalid_arg "Monitor.commit: new box must contain the current one";
  t.box <- box;
  t.events <- []

(** [kappa ?norm t] quantifies the pending enlargement: the maximum
    distance from recorded events to the current box (the paper's κ for
    Proposition 3). *)
let kappa ?(norm = `Linf) t =
  let dist =
    match norm with
    | `Linf -> Cv_interval.Box.dist_point_inf
    | `L2 -> Cv_interval.Box.dist_point_l2
  in
  List.fold_left (fun acc ev -> Float.max acc (dist ev.features t.box)) 0. t.events

(** [monitored_layer_features net ~layer x] extracts the feature vector
    the monitor watches: the output of layer [layer] (0-based) of [net]
    at input [x] — the paper monitors the "Flatten" layer output. *)
let monitored_layer_features net ~layer x =
  let trace = Cv_nn.Network.eval_trace net x in
  trace.(layer)
