(** Neuron activation-pattern monitoring — the paper's reference [1]
    (Cheng, Nührenberg, Yasuoka, DATE 2019), complementing the box
    monitor: the box abstraction catches magnitude novelty, the pattern
    abstraction catches combinatorial novelty. *)

type pattern = Bytes.t

type t

(** [pattern_of v] encodes the activation signs of one layer output
    (strictly positive = on). *)
val pattern_of : Cv_linalg.Vec.t -> pattern

(** [hamming a b] counts differing activation bits. *)
val hamming : pattern -> pattern -> int

(** [create ?gamma ~width samples] builds the monitor from the feature
    vectors of the training set; [gamma] (default 0) is the Hamming
    tolerance. *)
val create : ?gamma:int -> width:int -> Cv_linalg.Vec.t list -> t

(** [num_patterns t] is the number of distinct recorded patterns. *)
val num_patterns : t -> int

(** [known t v] — is the activation pattern of [v] within γ of a
    recorded one? *)
val known : t -> Cv_linalg.Vec.t -> bool

(** [observe t v] — monitors one feature vector; [true] = flagged as a
    novel pattern. *)
val observe : t -> Cv_linalg.Vec.t -> bool

(** [extend t v] records the pattern of [v] as known — the commit step
    after a flagged input has been vetted. *)
val extend : t -> Cv_linalg.Vec.t -> unit

(** [flag_rate t] is flags/observations so far (0 when idle). *)
val flag_rate : t -> float

(** [stats t] is [(observations, flags, distinct_patterns)]. *)
val stats : t -> int * int * int
