lib/monitor/pattern_monitor.ml: Array Bytes Char Hashtbl List Option
