lib/monitor/monitor.mli: Cv_interval Cv_linalg Cv_nn
