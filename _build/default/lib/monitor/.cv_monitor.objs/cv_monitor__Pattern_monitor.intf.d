lib/monitor/pattern_monitor.mli: Bytes Cv_linalg
