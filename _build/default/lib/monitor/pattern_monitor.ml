(** Neuron activation-pattern monitoring — the paper's reference [1]
    (Cheng, Nührenberg, Yasuoka, "Runtime monitoring neuron activation
    patterns", DATE 2019), complementing the box monitor in {!Monitor}.

    During data collection, the binary on/off pattern of a monitored
    ReLU layer is recorded for every training sample. In operation, an
    input whose pattern was never seen — not even within a Hamming
    distance budget γ — is flagged as outside the comfort zone, even
    when its raw feature values sit inside the monitored box. The two
    monitors are complementary: the box abstraction catches magnitude
    novelty, the pattern abstraction catches combinatorial novelty. *)

type pattern = Bytes.t

type t = {
  seen : (pattern, int) Hashtbl.t;  (** pattern -> occurrences *)
  width : int;
  gamma : int;  (** Hamming tolerance *)
  mutable observations : int;
  mutable flags : int;
}

(** [pattern_of v] encodes the activation signs of one layer output
    (post-ReLU: strictly positive = on). *)
let pattern_of v =
  let n = Array.length v in
  let b = Bytes.make ((n + 7) / 8) '\000' in
  for i = 0 to n - 1 do
    if v.(i) > 0. then begin
      let byte = i / 8 and bit = i mod 8 in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl bit)))
    end
  done;
  b

let popcount_byte c =
  let x = Char.code c in
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

(** [hamming a b] counts differing activation bits. *)
let hamming a b =
  if Bytes.length a <> Bytes.length b then invalid_arg "Pattern_monitor.hamming";
  let acc = ref 0 in
  for i = 0 to Bytes.length a - 1 do
    acc :=
      !acc
      + popcount_byte
          (Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))
  done;
  !acc

(** [create ?gamma ~width samples] builds the monitor from the feature
    vectors of the training set. [gamma] (default 0) is the Hamming
    tolerance: a runtime pattern within distance γ of any recorded
    pattern counts as known. *)
let create ?(gamma = 0) ~width samples =
  if gamma < 0 then invalid_arg "Pattern_monitor.create: negative gamma";
  let seen = Hashtbl.create 256 in
  List.iter
    (fun v ->
      if Array.length v <> width then
        invalid_arg "Pattern_monitor.create: sample width mismatch";
      let p = pattern_of v in
      Hashtbl.replace seen p (1 + Option.value ~default:0 (Hashtbl.find_opt seen p)))
    samples;
  { seen; width; gamma; observations = 0; flags = 0 }

(** [num_patterns t] is the number of distinct recorded patterns. *)
let num_patterns t = Hashtbl.length t.seen

(** [known t v] — is the activation pattern of [v] within γ of a
    recorded one? *)
let known t v =
  if Array.length v <> t.width then invalid_arg "Pattern_monitor.known: width";
  let p = pattern_of v in
  if Hashtbl.mem t.seen p then true
  else if t.gamma = 0 then false
  else
    (* Linear scan with Hamming tolerance; pattern sets stay small at
       our layer widths. *)
    Hashtbl.fold (fun q _ acc -> acc || hamming p q <= t.gamma) t.seen false

(** [observe t v] — monitors one feature vector; [true] = flagged as a
    novel pattern. *)
let observe t v =
  t.observations <- t.observations + 1;
  let fresh = not (known t v) in
  if fresh then t.flags <- t.flags + 1;
  fresh

(** [extend t v] records the pattern of [v] as known — the commit step
    after an engineer vets a flagged input (or after re-verification
    covers it). *)
let extend t v =
  if Array.length v <> t.width then invalid_arg "Pattern_monitor.extend: width";
  let p = pattern_of v in
  Hashtbl.replace t.seen p
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.seen p))

(** [flag_rate t] is flags/observations so far (0 when idle). *)
let flag_rate t =
  if t.observations = 0 then 0.
  else float_of_int t.flags /. float_of_int t.observations

(** [stats t] is [(observations, flags, distinct_patterns)]. *)
let stats t = (t.observations, t.flags, Hashtbl.length t.seen)
