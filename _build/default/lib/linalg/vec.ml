(** Dense float vectors.

    Thin, allocation-conscious wrappers over [float array]; the NN
    evaluator, the abstract-domain transformers and the LP solver all
    build on these. Vectors are not length-checked at the type level;
    functions raise [Invalid_argument] on dimension mismatch. *)

type t = float array

(** [create n x] is an [n]-vector filled with [x]. *)
let create n x = Array.make n x

(** [zeros n] is the zero vector of dimension [n]. *)
let zeros n = Array.make n 0.

(** [init n f] builds the vector [| f 0; ...; f (n-1) |]. *)
let init = Array.init

(** [dim v] is the dimension of [v]. *)
let dim = Array.length

(** [copy v] is a fresh copy. *)
let copy = Array.copy

(** [of_list l] converts from a list. *)
let of_list = Array.of_list

(** [to_list v] converts to a list. *)
let to_list = Array.to_list

let check_same_dim name a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length a) (Array.length b))

(** [add a b] is the componentwise sum. *)
let add a b =
  check_same_dim "add" a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

(** [sub a b] is the componentwise difference. *)
let sub a b =
  check_same_dim "sub" a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

(** [scale c v] multiplies every component by [c]. *)
let scale c v = Array.map (fun x -> c *. x) v

(** [neg v] is [scale (-1.) v]. *)
let neg v = scale (-1.) v

(** [mul a b] is the componentwise (Hadamard) product. *)
let mul a b =
  check_same_dim "mul" a b;
  Array.init (Array.length a) (fun i -> a.(i) *. b.(i))

(** [dot a b] is the inner product. *)
let dot a b =
  check_same_dim "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

(** [axpy ~alpha x y] computes [alpha * x + y] without mutating inputs. *)
let axpy ~alpha x y =
  check_same_dim "axpy" x y;
  Array.init (Array.length x) (fun i -> (alpha *. x.(i)) +. y.(i))

(** [norm1 v] is the L1 norm. *)
let norm1 v = Array.fold_left (fun acc x -> acc +. Float.abs x) 0. v

(** [norm2 v] is the Euclidean norm. *)
let norm2 v = sqrt (dot v v)

(** [norm_inf v] is the max-abs (Chebyshev) norm. *)
let norm_inf v = Cv_util.Float_utils.max_abs v

(** [dist2 a b] is the Euclidean distance between [a] and [b]. *)
let dist2 a b = norm2 (sub a b)

(** [dist_inf a b] is the Chebyshev distance between [a] and [b]. *)
let dist_inf a b =
  check_same_dim "dist_inf" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := Float.max !acc (Float.abs (a.(i) -. b.(i)))
  done;
  !acc

(** [map f v] applies [f] componentwise. *)
let map = Array.map

(** [map2 f a b] applies [f] pairwise; dimensions must agree. *)
let map2 f a b =
  check_same_dim "map2" a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

(** [approx_eq ?tol a b] is componentwise approximate equality. *)
let approx_eq ?tol a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Cv_util.Float_utils.approx_eq ?tol x y) a b

(** [concat a b] appends [b] after [a]. *)
let concat = Array.append

(** [pp ppf v] prints as [[x1; x2; ...]] with 4 significant digits. *)
let pp ppf v =
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.4g") v)))

(** [to_string v] renders {!pp} to a string. *)
let to_string v = Format.asprintf "%a" pp v
