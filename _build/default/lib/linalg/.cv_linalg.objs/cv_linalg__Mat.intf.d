lib/linalg/mat.mli: Cv_util Format Vec
