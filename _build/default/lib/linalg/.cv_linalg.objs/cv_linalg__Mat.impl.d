lib/linalg/mat.ml: Array Cv_util Float Format List Printf Vec
