lib/linalg/vec.ml: Array Cv_util Float Format Printf String
