(** Dense row-major float matrices.

    Backing store is a flat [float array] with explicit [rows]/[cols];
    all the layer transformers, the Lipschitz estimators and the LP
    tableau build on this module. *)

type t = { rows : int; cols : int; data : float array }

(** [create rows cols x] is a [rows × cols] matrix filled with [x]. *)
let create rows cols x = { rows; cols; data = Array.make (rows * cols) x }

(** [zeros rows cols] is the zero matrix. *)
let zeros rows cols = create rows cols 0.

(** [init rows cols f] builds the matrix with entries [f i j]. *)
let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

(** [identity n] is the [n × n] identity. *)
let identity n = init n n (fun i j -> if i = j then 1. else 0.)

(** [rows m] is the number of rows. *)
let rows m = m.rows

(** [cols m] is the number of columns. *)
let cols m = m.cols

(** [get m i j] reads entry [(i, j)]. *)
let get m i j = m.data.((i * m.cols) + j)

(** [set m i j x] writes entry [(i, j)] in place. *)
let set m i j x = m.data.((i * m.cols) + j) <- x

(** [copy m] is a deep copy. *)
let copy m = { m with data = Array.copy m.data }

(** [row m i] extracts row [i] as a fresh vector. *)
let row m i = Array.sub m.data (i * m.cols) m.cols

(** [col m j] extracts column [j] as a fresh vector. *)
let col m j = Array.init m.rows (fun i -> get m i j)

(** [of_rows rows] builds a matrix from a non-empty list of equal-length
    row vectors. *)
let of_rows = function
  | [] -> invalid_arg "Mat.of_rows: empty"
  | first :: _ as rows_list ->
    let cols = Array.length first in
    let rows = List.length rows_list in
    let m = zeros rows cols in
    List.iteri
      (fun i r ->
        if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows";
        Array.blit r 0 m.data (i * cols) cols)
      rows_list;
    m

(** [to_rows m] is the list of row vectors. *)
let to_rows m = List.init m.rows (row m)

(** [transpose m] is the transposed matrix. *)
let transpose m = init m.cols m.rows (fun i j -> get m j i)

(** [matvec m v] is the matrix-vector product [m v]. *)
let matvec m v =
  if Array.length v <> m.cols then
    invalid_arg
      (Printf.sprintf "Mat.matvec: %dx%d with vector of dim %d" m.rows m.cols
         (Array.length v));
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + j) *. v.(j))
      done;
      !acc)

(** [matvec_add m v b] is [m v + b], the affine map used by NN layers. *)
let matvec_add m v b =
  let r = matvec m v in
  if Array.length b <> m.rows then invalid_arg "Mat.matvec_add: bias dim";
  for i = 0 to m.rows - 1 do
    r.(i) <- r.(i) +. b.(i)
  done;
  r

(** [matmul a b] is the matrix product [a b]. *)
let matmul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.matmul: %dx%d with %dx%d" a.rows a.cols b.rows b.cols);
  let c = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then begin
        let base_b = k * b.cols in
        let base_c = i * b.cols in
        for j = 0 to b.cols - 1 do
          c.data.(base_c + j) <- c.data.(base_c + j) +. (aik *. b.data.(base_b + j))
        done
      end
    done
  done;
  c

(** [add a b] is the entrywise sum. *)
let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: shape";
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

(** [sub a b] is the entrywise difference. *)
let sub a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.sub: shape";
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

(** [scale c m] multiplies every entry by [c]. *)
let scale c m = { m with data = Array.map (fun x -> c *. x) m.data }

(** [map f m] applies [f] entrywise. *)
let map f m = { m with data = Array.map f m.data }

(** [max_abs m] is the largest absolute entry. *)
let max_abs m = Cv_util.Float_utils.max_abs m.data

(** [norm_inf m] is the operator ∞-norm: max row absolute sum. This is a
    valid Lipschitz constant of [x ↦ m x] in the ∞-norm. *)
let norm_inf m =
  let best = ref 0. in
  for i = 0 to m.rows - 1 do
    let s = ref 0. in
    for j = 0 to m.cols - 1 do
      s := !s +. Float.abs m.data.((i * m.cols) + j)
    done;
    best := Float.max !best !s
  done;
  !best

(** [norm1 m] is the operator 1-norm: max column absolute sum. *)
let norm1 m =
  let best = ref 0. in
  for j = 0 to m.cols - 1 do
    let s = ref 0. in
    for i = 0 to m.rows - 1 do
      s := !s +. Float.abs m.data.((i * m.cols) + j)
    done;
    best := Float.max !best !s
  done;
  !best

(** [frobenius m] is the Frobenius norm (an upper bound on the spectral
    norm). *)
let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

(** [spectral_norm ?iters ?rng m] estimates the operator 2-norm (largest
    singular value) by power iteration on [mᵀm]. The estimate converges
    from below; callers needing a sound upper bound should prefer
    {!frobenius} or [sqrt (norm1 m *. norm_inf m)]. *)
let spectral_norm ?(iters = 100) ?rng m =
  if m.rows = 0 || m.cols = 0 then 0.
  else begin
    let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 7 in
    let mt = transpose m in
    let v = ref (Cv_util.Rng.uniform_array rng m.cols ~lo:(-1.) ~hi:1.) in
    (try
       for _ = 1 to iters do
         let w = matvec mt (matvec m !v) in
         let n = Vec.norm2 w in
         if n < 1e-300 then raise Exit;
         v := Vec.scale (1. /. n) w
       done
     with Exit -> ());
    (* Rayleigh quotient at the converged vector. *)
    let mv = matvec m !v in
    let nv = Vec.norm2 !v in
    if nv < 1e-300 then 0. else Vec.norm2 mv /. nv
  end

(** [sqrt_norm1_norminf m] is [sqrt (‖m‖₁ ‖m‖∞)], a cheap sound upper
    bound on the spectral norm. *)
let sqrt_norm1_norminf m = sqrt (norm1 m *. norm_inf m)

(** [approx_eq ?tol a b] is entrywise approximate equality of same-shape
    matrices. *)
let approx_eq ?tol a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Cv_util.Float_utils.approx_eq ?tol x y) a.data b.data

(** [random ?rng rows cols ~lo ~hi] draws entries uniformly. *)
let random ?rng rows cols ~lo ~hi =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 11 in
  init rows cols (fun _ _ -> Cv_util.Rng.float rng ~lo ~hi)

(** [xavier ?rng rows cols] draws entries from the Glorot-uniform
    distribution for a layer with [cols] inputs and [rows] outputs. *)
let xavier ?rng rows cols =
  let rng = match rng with Some r -> r | None -> Cv_util.Rng.create 13 in
  let limit = sqrt (6. /. float_of_int (rows + cols)) in
  init rows cols (fun _ _ -> Cv_util.Rng.float rng ~lo:(-.limit) ~hi:limit)

(** [pp ppf m] prints rows one per line. *)
let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "%a@," Vec.pp (row m i)
  done;
  Format.fprintf ppf "@]"

(** [to_json m] encodes shape and entries. *)
let to_json m =
  Cv_util.Json.Obj
    [ ("rows", Cv_util.Json.of_int m.rows);
      ("cols", Cv_util.Json.of_int m.cols);
      ("data", Cv_util.Json.of_float_array m.data) ]

(** [of_json j] decodes a matrix written by {!to_json}. *)
let of_json j =
  let open Cv_util.Json in
  let rows = to_int (member "rows" j) in
  let cols = to_int (member "cols" j) in
  let data = float_array (member "data" j) in
  if Array.length data <> rows * cols then
    raise (Error "Mat.of_json: data length mismatch");
  { rows; cols; data }
