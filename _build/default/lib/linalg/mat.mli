(** Dense row-major float matrices (flat backing store). *)

type t

val create : int -> int -> float -> t

val zeros : int -> int -> t

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

(** [set m i j x] writes entry [(i, j)] in place. *)
val set : t -> int -> int -> float -> unit

val copy : t -> t

(** [row m i] extracts row [i] as a fresh vector. *)
val row : t -> int -> Vec.t

val col : t -> int -> Vec.t

(** [of_rows rows] builds a matrix from a non-empty list of equal-length
    row vectors. *)
val of_rows : Vec.t list -> t

val to_rows : t -> Vec.t list

val transpose : t -> t

val matvec : t -> Vec.t -> Vec.t

(** [matvec_add m v b] is [m v + b], the affine map of NN layers. *)
val matvec_add : t -> Vec.t -> Vec.t -> Vec.t

val matmul : t -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val map : (float -> float) -> t -> t

val max_abs : t -> float

(** [norm_inf m] is the operator ∞-norm (max row absolute sum). *)
val norm_inf : t -> float

(** [norm1 m] is the operator 1-norm (max column absolute sum). *)
val norm1 : t -> float

val frobenius : t -> float

(** [spectral_norm ?iters ?rng m] estimates ‖m‖₂ by power iteration —
    converges from below; not a sound upper bound. *)
val spectral_norm : ?iters:int -> ?rng:Cv_util.Rng.t -> t -> float

(** [sqrt_norm1_norminf m] is [sqrt (‖m‖₁ ‖m‖∞)], a cheap sound upper
    bound on the spectral norm. *)
val sqrt_norm1_norminf : t -> float

val approx_eq : ?tol:float -> t -> t -> bool

val random : ?rng:Cv_util.Rng.t -> int -> int -> lo:float -> hi:float -> t

(** [xavier ?rng rows cols] draws Glorot-uniform entries. *)
val xavier : ?rng:Cv_util.Rng.t -> int -> int -> t

val pp : Format.formatter -> t -> unit

val to_json : t -> Cv_util.Json.t

val of_json : Cv_util.Json.t -> t
