(** Dense float vectors: thin wrappers over [float array]. Functions
    raise [Invalid_argument] on dimension mismatch. *)

type t = float array

val create : int -> float -> t

val zeros : int -> t

val init : int -> (int -> float) -> t

val dim : t -> int

val copy : t -> t

val of_list : float list -> t

val to_list : t -> float list

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val neg : t -> t

(** [mul a b] is the componentwise (Hadamard) product. *)
val mul : t -> t -> t

val dot : t -> t -> float

(** [axpy ~alpha x y] computes [alpha * x + y] without mutating
    inputs. *)
val axpy : alpha:float -> t -> t -> t

val norm1 : t -> float

val norm2 : t -> float

val norm_inf : t -> float

val dist2 : t -> t -> float

val dist_inf : t -> t -> float

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val approx_eq : ?tol:float -> t -> t -> bool

val concat : t -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
