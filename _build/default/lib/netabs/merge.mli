(** Merging split neurons into a structural abstraction, and the Prop. 6
    reuse check.

    Merging a group of same-category copies: incoming weights and bias
    take the entrywise {e max} for inc categories and {e min} for dec;
    outgoing weights are summed. The merged network dominates the split
    network pointwise on the (shifted) non-negative domain. *)

type t = {
  base : Netabs.snet;  (** the exact split network of the original f *)
  partition : int array array array;
      (** per hidden layer: groups of copy indices (same category) *)
  merged : Netabs.snet;  (** the abstraction f̂ *)
}

(** [of_partition base partition] merges [base] according to
    [partition]; every group must be non-empty and category-uniform and
    the partition must cover each layer. *)
val of_partition : Netabs.snet -> int array array array -> t

(** [coarsest base] merges every layer down to at most one neuron per
    category — the strongest (least precise) abstraction. *)
val coarsest : Netabs.snet -> t

(** [finest base] keeps every copy separate — no information loss. *)
val finest : Netabs.snet -> t

(** [refine t] splits the largest mergeable group in half; [None] when
    the abstraction is already finest. *)
val refine : t -> t option

(** [size t] is the hidden-neuron count of the merged network. *)
val size : t -> int

(** [merged_network t] is the abstraction as a plain network over the
    {e shifted} inputs (see {!Netabs.shifted_box}). *)
val merged_network : t -> Cv_nn.Network.t

(** [eval t x] evaluates f̂ at an original (unshifted) input. *)
val eval : t -> Cv_linalg.Vec.t -> float

(** [reuses t f'] checks — by weight comparisons only, no solver — that
    the abstraction (built from [f] over its [D_in]) also dominates the
    fine-tuned [f']: [f̂(x) ≥ f'(x)] on the same domain. *)
val reuses : t -> Cv_nn.Network.t -> bool
