(** Structural network abstraction in the style of Elboher, Gottschlich
    and Katz (CAV 2020) — neuron splitting by outgoing-sign and
    output-effect direction, the preprocessing step before {!Merge}.
    Splitting preserves the function exactly; inputs are shifted by the
    lower bounds of [D_in] so the domination arguments apply. *)

type category = Pos_inc | Pos_dec | Neg_inc | Neg_dec

val category_name : category -> string

val is_inc : category -> bool

val is_pos : category -> bool

(** One split hidden layer: ReLU neurons with incoming weights from the
    previous split layer (or the shifted inputs) and a category each. *)
type slayer = {
  w : Cv_linalg.Mat.t;
  b : Cv_linalg.Vec.t;
  cat : category array;
}

(** A split network: hidden ReLU layers, then a single-output identity
    layer. *)
type snet = {
  input_dim : int;
  input_shift : Cv_linalg.Vec.t;  (** original x = shifted x' + input_shift *)
  hidden : slayer array;
  out_w : Cv_linalg.Vec.t;
  out_b : float;
  sources : (int * category) array array;
      (** per hidden layer: source neuron and category of each copy *)
}

exception Unsupported of string

(** [check_single_output_relu net] raises {!Unsupported} unless [net] is
    a single-output ReLU network with an identity output layer. *)
val check_single_output_relu : Cv_nn.Network.t -> unit

(** [edge_copy_category w ~target_inc] is the category of the copy
    carrying an edge of weight [w] into a target of the given
    direction. *)
val edge_copy_category : float -> target_inc:bool -> category

(** [split net ~din] produces the split network (function-preserving).
    Raises {!Unsupported} for non-ReLU or multi-output networks. *)
val split : Cv_nn.Network.t -> din:Cv_interval.Box.t -> snet

(** [snet_eval s x] evaluates at an {e original} (unshifted) input. *)
val snet_eval : snet -> Cv_linalg.Vec.t -> float

(** [snet_size s] is the total hidden-neuron count after splitting. *)
val snet_size : snet -> int

(** [shifted_box din shift] is the non-negative input box of the split
    network. *)
val shifted_box : Cv_interval.Box.t -> Cv_linalg.Vec.t -> Cv_interval.Box.t

(** [to_network s] converts to a plain network over the {e shifted}
    inputs. *)
val to_network : snet -> Cv_nn.Network.t
