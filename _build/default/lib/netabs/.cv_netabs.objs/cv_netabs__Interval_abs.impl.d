lib/netabs/interval_abs.ml: Array Cv_interval Cv_linalg Cv_nn
