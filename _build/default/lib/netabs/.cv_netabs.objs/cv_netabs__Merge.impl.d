lib/netabs/merge.ml: Array Cv_linalg Cv_nn Cv_util Float Hashtbl List Netabs
