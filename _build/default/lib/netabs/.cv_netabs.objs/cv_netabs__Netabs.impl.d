lib/netabs/netabs.ml: Array Cv_interval Cv_linalg Cv_nn Cv_util Hashtbl List Printf
