lib/netabs/netabs.mli: Cv_interval Cv_linalg Cv_nn
