lib/netabs/merge.mli: Cv_linalg Cv_nn Netabs
