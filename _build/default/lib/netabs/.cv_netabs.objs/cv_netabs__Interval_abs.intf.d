lib/netabs/interval_abs.mli: Cv_interval Cv_nn
