(** Merging split neurons into an abstraction, and the Prop. 6 reuse
    check.

    Merging a group G of same-category copies in one hidden layer:
    - incoming weights and bias: entrywise {e max} over G for inc
      categories, {e min} for dec;
    - outgoing weights: {e sum} over G.

    Merging all layers simultaneously composes these pairwise-sound
    steps; the merged incoming weight from previous-layer group H to G is
    [Σ_{p∈H} agg_{a∈G} w(a, p)] (aggregate over the group first, then
    sum over the predecessor group). The result dominates the split
    network pointwise on non-negative inputs: [f̂(x) ≥ f(x)]. *)

type t = {
  base : Netabs.snet;  (** the exact split network of the original f *)
  partition : int array array array;
      (** per hidden layer: groups of copy indices (same category) *)
  merged : Netabs.snet;  (** the abstraction f̂ *)
}

let agg_fun cat = if Netabs.is_inc cat then Float.max else Float.min

let agg_init cat = if Netabs.is_inc cat then Float.neg_infinity else Float.infinity

(* Aggregate one group's incoming weights over individual predecessors,
   then sum predecessor groups. [prev_partition] = None for the first
   hidden layer (inputs are not grouped). *)
let merged_layer (base : Netabs.snet) level groups ~prev_partition =
  let sl = base.Netabs.hidden.(level) in
  let n_groups = Array.length groups in
  let cat = Array.map (fun g -> sl.Netabs.cat.(g.(0))) groups in
  (* Aggregate per individual predecessor column first. *)
  let cols = Cv_linalg.Mat.cols sl.Netabs.w in
  let agg_rows =
    Array.mapi
      (fun gi g ->
        let f = agg_fun cat.(gi) and init = agg_init cat.(gi) in
        Array.init cols (fun k ->
            Array.fold_left
              (fun acc a -> f acc (Cv_linalg.Mat.get sl.Netabs.w a k))
              init g))
      groups
  in
  let bias =
    Array.mapi
      (fun gi g ->
        let f = agg_fun cat.(gi) and init = agg_init cat.(gi) in
        Array.fold_left (fun acc a -> f acc sl.Netabs.b.(a)) init g)
      groups
  in
  (* Then sum over predecessor groups (or keep columns as-is for the
     input layer). *)
  let w =
    match prev_partition with
    | None -> Cv_linalg.Mat.of_rows (Array.to_list agg_rows)
    | Some prev_groups ->
      Cv_linalg.Mat.init n_groups (Array.length prev_groups) (fun gi h ->
          Array.fold_left (fun acc p -> acc +. agg_rows.(gi).(p)) 0. prev_groups.(h))
  in
  { Netabs.w; b = bias; cat }

let merged_out (base : Netabs.snet) last_groups =
  Array.map
    (fun g -> Array.fold_left (fun acc a -> acc +. base.Netabs.out_w.(a)) 0. g)
    last_groups

let rebuild base partition =
  let n = Array.length base.Netabs.hidden in
  let hidden =
    Array.init n (fun i ->
        merged_layer base i partition.(i)
          ~prev_partition:(if i = 0 then None else Some partition.(i - 1)))
  in
  let out_w = merged_out base partition.(n - 1) in
  let sources =
    Array.mapi
      (fun i groups ->
        Array.map (fun g -> base.Netabs.sources.(i).(g.(0))) groups)
      partition
  in
  { base with Netabs.hidden; out_w; sources }

(** [of_partition base partition] merges [base] according to
    [partition]; every group must be non-empty and category-uniform. *)
let of_partition base partition =
  Array.iteri
    (fun i groups ->
      let sl = base.Netabs.hidden.(i) in
      let seen = Array.make (Array.length sl.Netabs.cat) false in
      Array.iter
        (fun g ->
          if Array.length g = 0 then invalid_arg "Merge.of_partition: empty group";
          let c = sl.Netabs.cat.(g.(0)) in
          Array.iter
            (fun a ->
              if seen.(a) then invalid_arg "Merge.of_partition: duplicate member";
              seen.(a) <- true;
              if sl.Netabs.cat.(a) <> c then
                invalid_arg "Merge.of_partition: mixed categories in a group")
            g)
        groups;
      if Array.exists not seen then
        invalid_arg "Merge.of_partition: partition must cover the layer")
    partition;
  { base; partition; merged = rebuild base partition }

(** [coarsest base] merges every layer down to at most one neuron per
    category — the strongest (and least precise) abstraction. *)
let coarsest base =
  let partition =
    Array.map
      (fun (sl : Netabs.slayer) ->
        let by_cat = Hashtbl.create 4 in
        Array.iteri
          (fun a c ->
            let cur = try Hashtbl.find by_cat c with Not_found -> [] in
            Hashtbl.replace by_cat c (a :: cur))
          sl.Netabs.cat;
        Hashtbl.fold (fun _ members acc -> Array.of_list (List.rev members) :: acc)
          by_cat []
        |> Array.of_list)
      base.Netabs.hidden
  in
  of_partition base partition

(** [finest base] keeps every copy separate — f̂ = split(f), no
    information loss (useful as the refinement fixpoint). *)
let finest base =
  let partition =
    Array.map
      (fun (sl : Netabs.slayer) ->
        Array.init (Array.length sl.Netabs.cat) (fun a -> [| a |]))
      base.Netabs.hidden
  in
  of_partition base partition

(** [refine t] splits the largest mergeable group (ties: earliest layer)
    in half; [None] when the abstraction is already finest. *)
let refine t =
  let best = ref None in
  Array.iteri
    (fun i groups ->
      Array.iteri
        (fun gi g ->
          let sz = Array.length g in
          if sz > 1 then
            match !best with
            | Some (_, _, best_sz) when best_sz >= sz -> ()
            | _ -> best := Some (i, gi, sz))
        groups)
    t.partition;
  match !best with
  | None -> None
  | Some (layer, gi, sz) ->
    let g = t.partition.(layer).(gi) in
    let half = sz / 2 in
    let left = Array.sub g 0 half and right = Array.sub g half (sz - half) in
    let groups = Array.copy t.partition.(layer) in
    groups.(gi) <- left;
    let groups = Array.append groups [| right |] in
    let partition = Array.copy t.partition in
    partition.(layer) <- groups;
    Some (of_partition t.base partition)

(** [size t] is the hidden-neuron count of the merged network. *)
let size t = Netabs.snet_size t.merged

(** [merged_network t] is the abstraction as a plain network over the
    {e shifted} inputs. *)
let merged_network t = Netabs.to_network t.merged

(** [eval t x] evaluates f̂ at an original (unshifted) input. *)
let eval t x = Netabs.snet_eval t.merged x

(* ------------------------------------------------------------------ *)
(* Prop. 6 reuse check                                                 *)
(* ------------------------------------------------------------------ *)

(* Map copy index -> group index for one layer. *)
let group_of partition_layer n_copies =
  let g = Array.make n_copies (-1) in
  Array.iteri (fun gi members -> Array.iter (fun a -> g.(a) <- gi) members)
    partition_layer;
  g

exception Not_reusable

(** [reuses t f'] checks — by weight comparisons only, no solver — that
    the abstraction [t] (built from [f] over its [D_in]) also dominates
    the fine-tuned [f']: [f̂(x) ≥ f'(x)] on the same domain. Returns
    [false] when any sufficient condition fails (sign flips relative to
    the original split structure, missing copies, or dominance
    violations). *)
let reuses t net' =
  let base = t.base in
  try
    Netabs.check_single_output_relu net';
    if Cv_nn.Network.in_dim net' <> base.Netabs.input_dim then raise Not_reusable;
    let layers' = Cv_nn.Network.layers net' in
    let n_hidden = Array.length base.Netabs.hidden in
    if Array.length layers' <> n_hidden + 1 then raise Not_reusable;
    (* Copy lookup tables of the base split structure. *)
    let index =
      Array.map
        (fun srcs ->
          let h = Hashtbl.create 16 in
          Array.iteri (fun c key -> Hashtbl.replace h key c) srcs;
          h)
        base.Netabs.sources
    in
    for i = 0 to n_hidden - 1 do
      let l' = layers'.(i) in
      let srcs = base.Netabs.sources.(i) in
      let merged = t.merged.Netabs.hidden.(i) in
      let groups = t.partition.(i) in
      let grp = group_of groups (Array.length srcs) in
      let prev_grp =
        if i = 0 then [||]
        else group_of t.partition.(i - 1) (Array.length base.Netabs.sources.(i - 1))
      in
      let n_prev_groups =
        if i = 0 then Cv_nn.Layer.in_dim l' else Array.length t.partition.(i - 1)
      in
      Array.iteri
        (fun a (j, cat) ->
          let inc = Netabs.is_inc cat in
          let gi = grp.(a) in
          (* Route f'-row of source neuron j over the base copy
             structure (by each edge's own sign), then sum per previous
             group and compare against the merged weights. *)
          let sums = Array.make n_prev_groups 0. in
          if i = 0 then
            for k = 0 to Cv_nn.Layer.in_dim l' - 1 do
              sums.(k) <- Cv_linalg.Mat.get l'.Cv_nn.Layer.weights j k
            done
          else begin
            let width' = Cv_nn.Layer.in_dim l' in
            for j' = 0 to width' - 1 do
              let w' = Cv_linalg.Mat.get l'.Cv_nn.Layer.weights j j' in
              if w' <> 0. then begin
                let need = Netabs.edge_copy_category w' ~target_inc:inc in
                match Hashtbl.find_opt index.(i - 1) (j', need) with
                | None -> raise Not_reusable (* copy absent in old structure *)
                | Some c -> sums.(prev_grp.(c)) <- sums.(prev_grp.(c)) +. w'
              end
            done
          end;
          (* Dominance per previous group, and on the bias. *)
          let tol = Cv_util.Float_utils.eps in
          for h = 0 to n_prev_groups - 1 do
            let m = Cv_linalg.Mat.get merged.Netabs.w gi h in
            if inc then (if sums.(h) > m +. tol then raise Not_reusable)
            else if sums.(h) < m -. tol then raise Not_reusable
          done;
          let b' =
            if i = 0 then
              l'.Cv_nn.Layer.bias.(j)
              +. Cv_linalg.Vec.dot
                   (Cv_linalg.Mat.row l'.Cv_nn.Layer.weights j)
                   base.Netabs.input_shift
            else l'.Cv_nn.Layer.bias.(j)
          in
          if inc then begin
            if b' > merged.Netabs.b.(gi) +. tol then raise Not_reusable
          end
          else if b' < merged.Netabs.b.(gi) -. tol then raise Not_reusable)
        srcs
    done;
    (* Output layer: per last-hidden group, the sum of routed f'-output
       weights must not exceed the merged outgoing weight; bias must not
       increase. *)
    let out' = layers'.(n_hidden) in
    let last_groups = t.partition.(n_hidden - 1) in
    let last_grp =
      group_of last_groups (Array.length base.Netabs.sources.(n_hidden - 1))
    in
    let sums = Array.make (Array.length last_groups) 0. in
    let out_row' = Cv_linalg.Mat.row out'.Cv_nn.Layer.weights 0 in
    Array.iteri
      (fun j' w' ->
        if w' <> 0. then begin
          let need = Netabs.edge_copy_category w' ~target_inc:true in
          match Hashtbl.find_opt index.(n_hidden - 1) (j', need) with
          | None -> raise Not_reusable
          | Some c -> sums.(last_grp.(c)) <- sums.(last_grp.(c)) +. w'
        end)
      out_row';
    let tol = Cv_util.Float_utils.eps in
    Array.iteri
      (fun h s -> if s > t.merged.Netabs.out_w.(h) +. tol then raise Not_reusable)
      sums;
    if out'.Cv_nn.Layer.bias.(0) > t.merged.Netabs.out_b +. tol then
      raise Not_reusable;
    true
  with Not_reusable | Netabs.Unsupported _ -> false
