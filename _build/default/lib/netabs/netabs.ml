(** Structural network abstraction in the style of Elboher, Gottschlich
    and Katz (CAV 2020) — the paper's third proof artifact (Prop. 6).

    For a single-output ReLU network [f] and an upper-bound property
    [f(x) ≤ c], the construction
    + {e splits} every hidden neuron into up to four copies so each copy
      has sign-uniform outgoing weights (pos/neg) and a uniform effect
      direction on the output (inc/dec), then
    + {e merges} same-category neurons within a layer (see {!Merge}):
      inc groups take the entrywise {e max} of incoming weights and
      biases, dec groups the {e min}; outgoing weights are summed.

    The merged network [f̂] dominates the original pointwise —
    [f̂(x) ≥ f(x)] for every x in the (normalised, non-negative) input
    domain — so proving [max f̂ ≤ c] proves the property. Lower bounds
    are handled by abstracting the negated network.

    Inputs are normalised to be non-negative by shifting with the lower
    bounds of [D_in] (the domination argument for merged incoming
    weights needs non-negative predecessor values; hidden layers are
    post-ReLU so only the input layer needs the shift). The verified
    head of the paper's experiment takes post-ReLU "Flatten" features,
    which are non-negative already. *)

type category = Pos_inc | Pos_dec | Neg_inc | Neg_dec

let category_name = function
  | Pos_inc -> "pos/inc"
  | Pos_dec -> "pos/dec"
  | Neg_inc -> "neg/inc"
  | Neg_dec -> "neg/dec"

let is_inc = function Pos_inc | Neg_inc -> true | Pos_dec | Neg_dec -> false

let is_pos = function Pos_inc | Pos_dec -> true | Neg_inc | Neg_dec -> false

(** One split hidden layer: ReLU neurons with incoming weights from the
    previous split layer (or the shifted inputs) and a category each. *)
type slayer = {
  w : Cv_linalg.Mat.t;  (** out × in *)
  b : Cv_linalg.Vec.t;
  cat : category array;  (** per out-neuron *)
}

(** A split network: hidden ReLU layers, then a single-output identity
    layer [out_w · h + out_b]. Evaluation shifts the original input by
    [input_shift] first, so the effective input domain is
    non-negative. *)
type snet = {
  input_dim : int;
  input_shift : Cv_linalg.Vec.t;  (** original x = shifted x' + input_shift *)
  hidden : slayer array;
  out_w : Cv_linalg.Vec.t;
  out_b : float;
  sources : (int * category) array array;
      (** per hidden layer: the original neuron and category each split
          copy came from — retained for the Prop. 6 reuse check *)
}

exception Unsupported of string

let check_single_output_relu net =
  if Cv_nn.Network.out_dim net <> 1 then
    raise (Unsupported "Netabs: network must have a single output");
  let layers = Cv_nn.Network.layers net in
  let n = Array.length layers in
  Array.iteri
    (fun i (l : Cv_nn.Layer.t) ->
      match (l.Cv_nn.Layer.act, i = n - 1) with
      | Cv_nn.Activation.Relu, false -> ()
      | Cv_nn.Activation.Identity, true -> ()
      | act, _ ->
        raise
          (Unsupported
             (Printf.sprintf "Netabs: layer %d has activation %s" (i + 1)
                (Cv_nn.Activation.to_string act))))
    layers;
  if n < 2 then raise (Unsupported "Netabs: need at least one hidden layer")

(* Category of the copy of a source neuron that carries an edge of
   weight [w] into a target whose direction is [target_inc]. The output
   neuron itself counts as inc. *)
let edge_copy_category w ~target_inc =
  if w >= 0. then if target_inc then Pos_inc else Pos_dec
  else if target_inc then Neg_dec
  else Neg_inc

(** [split net ~din] produces the split network over inputs shifted by
    the lower bounds of [din]. Splitting preserves the function exactly
    ([snet_eval] agrees with [Network.eval]); it only prepares the
    sign/direction-uniform structure that merging needs. Raises
    {!Unsupported} for non-ReLU or multi-output networks. *)
let split net ~din =
  check_single_output_relu net;
  let layers = Cv_nn.Network.layers net in
  let n = Array.length layers in
  if Cv_interval.Box.dim din <> Cv_nn.Network.in_dim net then
    invalid_arg "Netabs.split: din dimension";
  let input_shift = Cv_interval.Box.lower din in
  (* Backward pass: decide the copy set of each hidden layer.
     copies.(i) lists (source_neuron, category) in copy order;
     index.(i) maps (source_neuron, category) to the copy position. *)
  let copies = Array.make (n - 1) [||] in
  let index = Array.make (n - 1) (Hashtbl.create 0) in
  (* Neurons of the layer above the one being split: (incoming row over
     the unsplit current layer, inc?). Initially the output neuron. *)
  let above = ref [| (Cv_linalg.Mat.row layers.(n - 1).Cv_nn.Layer.weights 0, true) |] in
  for i = n - 2 downto 0 do
    let width = Cv_nn.Layer.out_dim layers.(i) in
    let table = Hashtbl.create 16 in
    let order = ref [] in
    Array.iter
      (fun (row, inc) ->
        for j = 0 to width - 1 do
          if row.(j) <> 0. then begin
            let cat = edge_copy_category row.(j) ~target_inc:inc in
            if not (Hashtbl.mem table (j, cat)) then begin
              Hashtbl.add table (j, cat) (List.length !order);
              order := (j, cat) :: !order
            end
          end
        done)
      !above;
    copies.(i) <- Array.of_list (List.rev !order);
    index.(i) <- table;
    if i > 0 then
      above :=
        Array.map
          (fun (j, cat) ->
            (Cv_linalg.Mat.row layers.(i).Cv_nn.Layer.weights j, is_inc cat))
          copies.(i)
  done;
  (* Forward build of the split layers. Each copy keeps the full
     incoming row of its source neuron; an edge from source j' is routed
     to the unique copy of j' whose category matches the edge sign and
     this copy's direction (so every original edge is used exactly once
     and the function is preserved). *)
  let hidden =
    Array.init (n - 1) (fun i ->
        let l = layers.(i) in
        let srcs = copies.(i) in
        let n_copies = Array.length srcs in
        let in_width =
          if i = 0 then Cv_nn.Layer.in_dim l else Array.length copies.(i - 1)
        in
        let w =
          Cv_linalg.Mat.init n_copies in_width (fun c k ->
              let j, my_cat = srcs.(c) in
              if i = 0 then Cv_linalg.Mat.get l.Cv_nn.Layer.weights j k
              else begin
                let j', k_cat = copies.(i - 1).(k) in
                let orig = Cv_linalg.Mat.get l.Cv_nn.Layer.weights j j' in
                if orig = 0. then 0.
                else if
                  k_cat = edge_copy_category orig ~target_inc:(is_inc my_cat)
                then orig
                else 0.
              end)
        in
        let b =
          Array.map
            (fun (j, _) ->
              if i = 0 then begin
                (* Absorb the input shift into the first-layer bias. *)
                let row = Cv_linalg.Mat.row l.Cv_nn.Layer.weights j in
                l.Cv_nn.Layer.bias.(j) +. Cv_linalg.Vec.dot row input_shift
              end
              else l.Cv_nn.Layer.bias.(j))
            srcs
        in
        { w; b; cat = Array.map snd srcs })
  in
  let last = copies.(n - 2) in
  let out_row = Cv_linalg.Mat.row layers.(n - 1).Cv_nn.Layer.weights 0 in
  let out_w =
    Array.map
      (fun (j, cat) ->
        let orig = out_row.(j) in
        if orig <> 0. && cat = edge_copy_category orig ~target_inc:true then orig
        else 0.)
      last
  in
  { input_dim = Cv_nn.Network.in_dim net;
    input_shift;
    hidden;
    out_w;
    out_b = layers.(n - 1).Cv_nn.Layer.bias.(0);
    sources = copies }

(** [snet_eval s x] evaluates the split network at an {e original}
    (unshifted) input — tests confirm it agrees exactly with the source
    network. *)
let snet_eval s x =
  let x' = Cv_linalg.Vec.sub x s.input_shift in
  let v = ref x' in
  Array.iter
    (fun sl ->
      v := Array.map Cv_util.Float_utils.relu (Cv_linalg.Mat.matvec_add sl.w !v sl.b))
    s.hidden;
  Cv_linalg.Vec.dot s.out_w !v +. s.out_b

(** [snet_size s] is the total hidden-neuron count after splitting. *)
let snet_size s = Array.fold_left (fun acc sl -> acc + Array.length sl.cat) 0 s.hidden

(** [shifted_box din shift] is the non-negative input box of the split
    network: [din] translated by [-shift]. *)
let shifted_box din shift =
  Array.mapi
    (fun i iv ->
      Cv_interval.Interval.make
        (Cv_interval.Interval.lo iv -. shift.(i))
        (Cv_interval.Interval.hi iv -. shift.(i)))
    din

(** [to_network s] converts a split network to a plain {!Cv_nn.Network}
    over the {e shifted} inputs (callers shift the box with
    {!shifted_box}). *)
let to_network s =
  let hidden_layers =
    Array.to_list
      (Array.map
         (fun sl -> Cv_nn.Layer.make sl.w sl.b Cv_nn.Activation.Relu)
         s.hidden)
  in
  let out_layer =
    Cv_nn.Layer.make
      (Cv_linalg.Mat.of_rows [ s.out_w ])
      [| s.out_b |] Cv_nn.Activation.Identity
  in
  Cv_nn.Network.of_list (hidden_layers @ [ out_layer ])
