(** Weight-interval network abstraction — a lightweight alternative
    artifact for Prop. 6: the original topology with every parameter
    replaced by an interval [w ± slack]. Reuse for a fine-tuned f' is a
    pure parameter-containment test. *)

type t

(** [build ~slack net] budgets the same absolute [slack] on every
    parameter of [net]. *)
val build : slack:float -> Cv_nn.Network.t -> t

(** [contains t net'] is the Prop. 6 reuse check: every parameter of
    [net'] lies within the abstraction's intervals. *)
val contains : t -> Cv_nn.Network.t -> bool

(** [output_box t din] is the interval-arithmetic reach of the
    abstraction over [din] — sound for every contained network. *)
val output_box : t -> Cv_interval.Box.t -> Cv_interval.Box.t

(** [proves_safety t ~din ~dout] — one interval sweep. *)
val proves_safety : t -> din:Cv_interval.Box.t -> dout:Cv_interval.Box.t -> bool

(** [max_slack net net'] is the smallest slack that would make
    [contains (build ~slack net) net'] true — the parameter drift of a
    fine-tuning step. *)
val max_slack : Cv_nn.Network.t -> Cv_nn.Network.t -> float
