(** Local robustness queries (related-work refs [16][17]): for a point
    [x], radius ε and output budget δ, robustness holds when
    [∀x' : ‖x' − x‖_∞ ≤ ε → ‖f(x') − f(x)‖_∞ ≤ δ]. *)

type query = {
  x : Cv_linalg.Vec.t;  (** centre point *)
  epsilon : float;  (** input radius (∞-norm) *)
  delta : float;  (** allowed output deviation (∞-norm) *)
}

(** [ball q] is the input region of the query. *)
val ball : query -> Cv_interval.Box.t

(** [target net q] is the output box [f(x) ± δ]. *)
val target : Cv_nn.Network.t -> query -> Cv_interval.Box.t

(** [check engine net q] decides the robustness query with any
    containment engine. *)
val check : Containment.engine -> Cv_nn.Network.t -> query -> Containment.verdict

(** [check_lipschitz ~ell q] — the O(1) sufficient condition
    [ℓ·ε ≤ δ]; [false] proves nothing. *)
val check_lipschitz : ell:float -> query -> bool

(** [transfer_budget ~old_net ~new_net q] is the residual output budget
    after fine-tuning, [δ − 2·max‖f' − f‖] over the ball (≤ 0 = no
    transfer). *)
val transfer_budget :
  old_net:Cv_nn.Network.t -> new_net:Cv_nn.Network.t -> query -> float

(** [check_transfer engine ~old_net ~new_net q] — robustness of the
    fine-tuned network via the differential transfer: verify the {e old}
    network against the residual budget. *)
val check_transfer :
  Containment.engine ->
  old_net:Cv_nn.Network.t ->
  new_net:Cv_nn.Network.t ->
  query ->
  Containment.verdict

(** [certified_radius ?engine ?steps net ~x ~delta] binary-searches the
    largest proved ε. *)
val certified_radius :
  ?engine:Containment.engine ->
  ?steps:int ->
  Cv_nn.Network.t ->
  x:Cv_linalg.Vec.t ->
  delta:float ->
  float
