(** Whole-property verification: [φ(f, D_in, D_out)].

    A thin specialisation of {!Containment} to the full network, plus
    the artifact-producing variant that returns the layer-wise state
    abstractions alongside the verdict — the "original problem" solver
    whose outputs the continuous-verification strategies reuse. *)

type report = {
  verdict : Containment.verdict;
  engine : Containment.engine;
  seconds : float;
}

(** [verify engine net prop] decides the safety property with the given
    engine and reports timing. *)
let verify engine net prop =
  if not (Property.well_formed prop net) then
    invalid_arg "Verifier.verify: property/network dimension mismatch";
  let verdict, seconds =
    Containment.check_timed engine net ~input_box:prop.Property.din
      ~target:prop.Property.dout
  in
  { verdict; engine; seconds }

(** Result of {!verify_with_abstractions}: the verdict plus, on success,
    inductive state abstractions [S_1..S_n] proving it. *)
type proof_result = {
  report : report;
  abstractions : Cv_interval.Box.t array option;
      (** [Some] only when the abstractions themselves prove safety
          ([S_n ⊆ D_out]) *)
}

(** [verify_with_abstractions ?domain ?fallback net prop] first tries the
    layer-wise abstract analysis (default: symbolic intervals, as in the
    paper's use of ReluVal): when the resulting [S_n ⊆ D_out], the
    property is proved {e and} the abstractions form a reusable proof
    artifact. Otherwise falls back to the exact engine (default MILP) —
    in which case no inductive box abstraction is produced (the verdict
    may still be [Proved]). *)
let verify_with_abstractions ?(domain = Cv_domains.Analyzer.Symint)
    ?(fallback = Containment.Milp) net prop =
  if not (Property.well_formed prop net) then
    invalid_arg "Verifier.verify_with_abstractions: dimension mismatch";
  let (abstractions, abstract_ok), abs_seconds =
    Cv_util.Timer.time (fun () ->
        let s = Cv_domains.Analyzer.abstractions domain net prop.Property.din in
        let ok =
          Cv_interval.Box.subset_tol
            s.(Array.length s - 1)
            prop.Property.dout
        in
        (s, ok))
  in
  if abstract_ok then
    { report =
        { verdict = Containment.Proved;
          engine = Containment.Abstract domain;
          seconds = abs_seconds };
      abstractions = Some abstractions }
  else begin
    let r = verify fallback net prop in
    { report = { r with seconds = r.seconds +. abs_seconds };
      abstractions = None }
  end
