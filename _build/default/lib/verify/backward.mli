(** Backward reasoning: over-approximate the inputs that could violate
    the property — the paper's closing direction ("symbolic reasoning
    using both forward and backward propagation").

    The LP {e relaxation} of the network's big-M encoding is intersected
    with each violation constraint and every input coordinate is
    tightened by a pair of LPs; an infeasible LP proves that side of the
    property outright. *)

type suspect = {
  output : int;
  side : [ `Upper | `Lower ];
  region : Cv_interval.Box.t option;
      (** [None] = that side is proved safe by the LP relaxation *)
}

(** [suspect_regions net ~din ~dout] computes, for every output
    coordinate and finite side of [dout], either a safety proof or a
    suspect input box containing every potential violator. *)
val suspect_regions :
  Cv_nn.Network.t ->
  din:Cv_interval.Box.t ->
  dout:Cv_interval.Box.t ->
  suspect list

(** [all_safe suspects] — true when every side came back proved. *)
val all_safe : suspect list -> bool

(** [total_suspect_volume ~din suspects] is the largest suspect box's
    total width as a fraction of [din]'s (coarse risk metric; 0 = proved
    everywhere). *)
val total_suspect_volume : din:Cv_interval.Box.t -> suspect list -> float

(** [pp_suspect ppf s] prints one record. *)
val pp_suspect : Format.formatter -> suspect -> unit
