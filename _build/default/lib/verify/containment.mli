(** The local containment check — the workhorse of proof reuse.

    Every sufficient condition in the paper reduces to queries of the
    form [∀x ∈ B : g(x) ∈ T] where [g] is a small slice of the network,
    [B] an input box and [T] a stored state abstraction (or [D_out]).
    This module answers such queries with a selectable engine. *)

type engine =
  | Abstract of Cv_domains.Analyzer.domain_kind
      (** one-shot abstract interpretation: cheap, incomplete *)
  | Symint_split of int
      (** symbolic intervals with input bisection (ReluVal-style);
          the payload caps the number of splits *)
  | Milp  (** exact big-M encoding with cutoff queries; complete for
              piecewise-linear slices *)

(** [engine_name e] is a printable engine label. *)
val engine_name : engine -> string

type verdict =
  | Proved
  | Violated of Falsify.violation
  | Unknown of string
      (** the engine could not decide (abstract imprecision or budget) *)

(** [is_proved v] is true for [Proved]. *)
val is_proved : verdict -> bool

(** [check engine net ~input_box ~target] decides (or attempts)
    [∀x ∈ input_box : net(x) ∈ target]. *)
val check :
  engine ->
  Cv_nn.Network.t ->
  input_box:Cv_interval.Box.t ->
  target:Cv_interval.Box.t ->
  verdict

(** [check_timed engine net ~input_box ~target] also reports wall-clock
    seconds — the quantity the Table I reproduction aggregates. *)
val check_timed :
  engine ->
  Cv_nn.Network.t ->
  input_box:Cv_interval.Box.t ->
  target:Cv_interval.Box.t ->
  verdict * float
