lib/verify/split_cert.ml: Array Cv_domains Cv_interval Cv_util List
