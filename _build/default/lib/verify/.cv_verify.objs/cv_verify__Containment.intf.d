lib/verify/containment.mli: Cv_domains Cv_interval Cv_nn Falsify
