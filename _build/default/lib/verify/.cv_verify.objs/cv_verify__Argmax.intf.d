lib/verify/argmax.mli: Containment Cv_interval Cv_linalg Cv_nn
