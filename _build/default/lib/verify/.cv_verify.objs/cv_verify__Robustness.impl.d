lib/verify/robustness.ml: Containment Cv_diffverify Cv_interval Cv_linalg Cv_nn Cv_util
