lib/verify/backward.ml: Array Cv_interval Cv_lp Cv_milp Cv_nn Float Format Fun List
