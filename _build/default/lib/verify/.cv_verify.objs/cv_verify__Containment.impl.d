lib/verify/containment.ml: Array Cv_domains Cv_interval Cv_milp Cv_nn Cv_util Falsify Float Printf
