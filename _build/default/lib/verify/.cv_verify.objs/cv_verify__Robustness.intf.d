lib/verify/robustness.mli: Containment Cv_interval Cv_linalg Cv_nn
