lib/verify/split_cert.mli: Cv_interval Cv_nn Cv_util
