lib/verify/falsify.mli: Cv_interval Cv_linalg Cv_nn Cv_util
