lib/verify/range.ml: Array Containment Cv_interval Cv_milp Cv_nn Cv_util Falsify Float Property
