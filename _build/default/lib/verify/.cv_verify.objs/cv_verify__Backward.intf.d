lib/verify/backward.mli: Cv_interval Cv_nn Format
