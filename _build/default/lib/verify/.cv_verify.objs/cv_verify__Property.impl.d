lib/verify/property.ml: Cv_interval Cv_nn Cv_util Format
