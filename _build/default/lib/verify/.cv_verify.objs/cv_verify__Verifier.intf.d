lib/verify/verifier.mli: Containment Cv_domains Cv_interval Cv_nn Property
