lib/verify/argmax.ml: Array Containment Cv_interval Cv_linalg Cv_nn Cv_util Falsify Float Fun List Range
