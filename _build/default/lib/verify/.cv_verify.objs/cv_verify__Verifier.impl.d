lib/verify/verifier.ml: Array Containment Cv_domains Cv_interval Cv_util Property
