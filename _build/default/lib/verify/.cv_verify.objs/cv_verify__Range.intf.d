lib/verify/range.mli: Containment Cv_interval Cv_nn Property
