(** Sampling-based falsification.

    Cheap pre-checks run before any expensive solver call: random
    sampling plus coordinate-descent sharpening. A found counterexample
    settles a query definitively; failure to find one proves nothing. *)

type violation = {
  input : Cv_linalg.Vec.t;
  output : Cv_linalg.Vec.t;
  neuron : int;  (** violated output coordinate *)
  side : [ `Lower | `Upper ];
  margin : float;  (** how far outside the bound, > 0 *)
}

(** [violation_of net dout x] checks one concrete input against the
    output box. *)
val violation_of :
  Cv_nn.Network.t -> Cv_interval.Box.t -> Cv_linalg.Vec.t -> violation option

(** [search ?samples ?rounds ~rng net ~din ~dout ()] looks for an input
    in [din] whose output escapes [dout]; the box center and sharpened
    samples are tried first. *)
val search :
  ?samples:int ->
  ?rounds:int ->
  rng:Cv_util.Rng.t ->
  Cv_nn.Network.t ->
  din:Cv_interval.Box.t ->
  dout:Cv_interval.Box.t ->
  unit ->
  violation option
