(** Whole-property verification: [φ(f, D_in, D_out)]. *)

type report = {
  verdict : Containment.verdict;
  engine : Containment.engine;
  seconds : float;
}

(** [verify engine net prop] decides the safety property with the given
    engine and reports timing. *)
val verify : Containment.engine -> Cv_nn.Network.t -> Property.t -> report

(** Result of {!verify_with_abstractions}: the verdict plus, on success,
    inductive state abstractions [S_1..S_n] proving it. *)
type proof_result = {
  report : report;
  abstractions : Cv_interval.Box.t array option;
      (** [Some] only when the abstractions themselves prove safety
          ([S_n ⊆ D_out]) *)
}

(** [verify_with_abstractions ?domain ?fallback net prop] first tries
    the layer-wise abstract analysis (default: symbolic intervals, as in
    the paper's use of ReluVal): when the resulting [S_n ⊆ D_out], the
    property is proved {e and} the abstractions form a reusable proof
    artifact. Otherwise falls back to the exact engine (default
    MILP). *)
val verify_with_abstractions :
  ?domain:Cv_domains.Analyzer.domain_kind ->
  ?fallback:Containment.engine ->
  Cv_nn.Network.t ->
  Property.t ->
  proof_result
