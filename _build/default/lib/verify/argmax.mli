(** Argmax (advisory-style) properties over multi-output networks — the
    query shape of the ACAS-Xu benchmark: all queries lower to output
    differences via an appended linear layer, so every engine applies
    unchanged. *)

(** [difference_network net ~output] appends the [e_j − e_output] rows:
    its outputs are [s_j − s_output] for all [j ≠ output], ascending. *)
val difference_network : Cv_nn.Network.t -> output:int -> Cv_nn.Network.t

type verdict =
  | Holds  (** proved over the whole region *)
  | Fails of Cv_linalg.Vec.t  (** witness input *)
  | Unknown of string

(** [never_maximal engine net ~output ~region ~margin] — is advisory
    [output] never the argmax (beaten by at least [margin]) on
    [region]? Proved via a single globally dominating competitor;
    [Unknown] when no single competitor dominates. *)
val never_maximal :
  Containment.engine ->
  Cv_nn.Network.t ->
  output:int ->
  region:Cv_interval.Box.t ->
  margin:float ->
  verdict

(** [always_maximal engine net ~output ~region ~margin] — is advisory
    [output] the argmax (by at least [margin]) everywhere on [region]?
    Exact with a complete engine. *)
val always_maximal :
  Containment.engine ->
  Cv_nn.Network.t ->
  output:int ->
  region:Cv_interval.Box.t ->
  margin:float ->
  verdict

(** [score_gap net ~output ~region] bounds
    [max_region max_j (s_j − s_output)] exactly (MILP); negative means
    [output] is always maximal, with |gap| the certified decision
    margin. *)
val score_gap :
  Cv_nn.Network.t -> output:int -> region:Cv_interval.Box.t -> float
