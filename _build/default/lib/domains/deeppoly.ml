(** A DeepPoly-style polyhedral domain (Singh et al., POPL 2019).

    Every neuron keeps one lower and one upper {e linear} bound in terms
    of the previous node's neurons; concrete bounds are recovered by
    backsubstituting those bounds through all earlier nodes down to the
    input box. More precise than box and typically than zonotope on ReLU
    networks, at higher transformer cost — the top end of the precision
    ablation in the benches.

    Internally a network layer [x ↦ act (W x + b)] contributes an affine
    node and, for non-identity activations, an activation node. *)

type node = {
  lw : Cv_linalg.Mat.t;  (** lower-bound coefficients over previous node *)
  lb : Cv_linalg.Vec.t;  (** lower-bound constants *)
  uw : Cv_linalg.Mat.t;  (** upper-bound coefficients over previous node *)
  ub : Cv_linalg.Vec.t;  (** upper-bound constants *)
  bounds : Cv_interval.Box.t;  (** concrete bounds of this node's neurons *)
}

type t = {
  input : Cv_interval.Box.t;
  nodes : node list;  (** reverse order: head = most recent node *)
}

let name = "deeppoly"

let current_box a =
  match a.nodes with [] -> a.input | n :: _ -> n.bounds

let dim a = Cv_interval.Box.dim (current_box a)

let of_box b = { input = b; nodes = [] }

let to_box a = current_box a

(* Split a matrix into positive and negative parts: m = pos + neg with
   pos >= 0 and neg <= 0 entrywise. *)
let split_signs m =
  ( Cv_linalg.Mat.map (fun x -> if x > 0. then x else 0.) m,
    Cv_linalg.Mat.map (fun x -> if x < 0. then x else 0.) m )

(* One backsubstitution step for an upper expression (A, c):
   value ≤ A x_node + c  becomes a bound over the node's predecessor. *)
let subst_upper node (a, c) =
  let pos, neg = split_signs a in
  let a' =
    Cv_linalg.Mat.add (Cv_linalg.Mat.matmul pos node.uw) (Cv_linalg.Mat.matmul neg node.lw)
  in
  let c' =
    Cv_linalg.Vec.add c
      (Cv_linalg.Vec.add (Cv_linalg.Mat.matvec pos node.ub) (Cv_linalg.Mat.matvec neg node.lb))
  in
  (a', c')

(* Dual step for a lower expression. *)
let subst_lower node (a, c) =
  let pos, neg = split_signs a in
  let a' =
    Cv_linalg.Mat.add (Cv_linalg.Mat.matmul pos node.lw) (Cv_linalg.Mat.matmul neg node.uw)
  in
  let c' =
    Cv_linalg.Vec.add c
      (Cv_linalg.Vec.add (Cv_linalg.Mat.matvec pos node.lb) (Cv_linalg.Mat.matvec neg node.ub))
  in
  (a', c')

(* Evaluate an expression pair over the input box: upper expressions take
   per-coefficient worst case. *)
let eval_upper box (a, c) =
  Array.init (Cv_linalg.Mat.rows a) (fun i ->
      let acc = ref c.(i) in
      for j = 0 to Cv_linalg.Mat.cols a - 1 do
        let w = Cv_linalg.Mat.get a i j in
        let iv = Cv_interval.Box.get box j in
        acc :=
          !acc
          +.
          if w >= 0. then w *. Cv_interval.Interval.hi iv
          else w *. Cv_interval.Interval.lo iv
      done;
      !acc)

let eval_lower box (a, c) =
  Array.init (Cv_linalg.Mat.rows a) (fun i ->
      let acc = ref c.(i) in
      for j = 0 to Cv_linalg.Mat.cols a - 1 do
        let w = Cv_linalg.Mat.get a i j in
        let iv = Cv_interval.Box.get box j in
        acc :=
          !acc
          +.
          if w >= 0. then w *. Cv_interval.Interval.lo iv
          else w *. Cv_interval.Interval.hi iv
      done;
      !acc)

(* Concrete bounds for a candidate node appended after [nodes]: full
   backsubstitution to the input. *)
let concretize input nodes ~lw ~lb ~uw ~ub =
  let rec down_upper expr = function
    | [] -> expr
    | node :: rest -> down_upper (subst_upper node expr) rest
  in
  let rec down_lower expr = function
    | [] -> expr
    | node :: rest -> down_lower (subst_lower node expr) rest
  in
  let his = eval_upper input (down_upper (uw, ub) nodes) in
  let los = eval_lower input (down_lower (lw, lb) nodes) in
  Array.init (Array.length los) (fun i ->
      (* Guard against ulp-level crossing of the two relaxations. *)
      if los.(i) > his.(i) then
        Cv_interval.Interval.point (0.5 *. (los.(i) +. his.(i)))
      else Cv_interval.Interval.make los.(i) his.(i))

let push a ~lw ~lb ~uw ~ub =
  let bounds = concretize a.input a.nodes ~lw ~lb ~uw ~ub in
  { a with nodes = { lw; lb; uw; ub; bounds } :: a.nodes }

let affine w bias a =
  if Cv_linalg.Mat.cols w <> dim a then invalid_arg "Deeppoly.affine: dims";
  push a ~lw:w ~lb:bias ~uw:w ~ub:bias

(* ReLU node: per-neuron diagonal bounds chosen from the pre-activation
   concrete range [l, u]. *)
let relu a =
  let pre = current_box a in
  let n = Cv_interval.Box.dim pre in
  let lw = Cv_linalg.Mat.zeros n n and uw = Cv_linalg.Mat.zeros n n in
  let lb = Array.make n 0. and ub = Array.make n 0. in
  for i = 0 to n - 1 do
    let iv = Cv_interval.Box.get pre i in
    let l = Cv_interval.Interval.lo iv and u = Cv_interval.Interval.hi iv in
    if l >= 0. then begin
      Cv_linalg.Mat.set lw i i 1.;
      Cv_linalg.Mat.set uw i i 1.
    end
    else if u <= 0. then ()
    else begin
      (* Upper: chord u(x − l)/(u − l). Lower: λx with λ ∈ {0,1} by the
         smaller-area heuristic. *)
      let s = u /. (u -. l) in
      Cv_linalg.Mat.set uw i i s;
      ub.(i) <- -.s *. l;
      if u > -.l then Cv_linalg.Mat.set lw i i 1.
    end
  done;
  push a ~lw ~lb ~uw ~ub

(* Other activations: concrete interval node (coefficients zero). *)
let monotone_concrete act a =
  let pre = current_box a in
  let imgs = Array.map (Cv_nn.Activation.interval act) pre in
  let n = Array.length imgs in
  let zeros = Cv_linalg.Mat.zeros n n in
  push a ~lw:zeros
    ~lb:(Array.map Cv_interval.Interval.lo imgs)
    ~uw:zeros
    ~ub:(Array.map Cv_interval.Interval.hi imgs)

let apply_layer (l : Cv_nn.Layer.t) a =
  let a = affine l.Cv_nn.Layer.weights l.Cv_nn.Layer.bias a in
  match l.Cv_nn.Layer.act with
  | Cv_nn.Activation.Relu -> relu a
  | Cv_nn.Activation.Identity -> a
  | (Cv_nn.Activation.Leaky_relu _ | Cv_nn.Activation.Sigmoid | Cv_nn.Activation.Tanh)
    as act ->
    monotone_concrete act a
