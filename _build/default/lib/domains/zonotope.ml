(** The zonotope abstract domain (DeepZ-style transformers).

    A zonotope is an affine image of a hypercube: [{ c + G ε | ε ∈
    [-1,1]^m }]. Affine layers are exact; unstable ReLUs use the standard
    minimal-area relaxation that introduces one fresh noise symbol per
    unstable neuron. Used in the precision/cost ablation benches against
    box and symbolic intervals, mirroring the paper's remark that "other
    types [of] abstract transformers with better precision are used". *)

type t = {
  center : float array;  (** c, dimension d *)
  generators : float array array;  (** list of generator rows, each of dimension d *)
}

let name = "zonotope"

let dim z = Array.length z.center

(** [of_box b] has one generator per non-degenerate axis. *)
let of_box b =
  let n = Cv_interval.Box.dim b in
  let center = Array.init n (fun i -> Cv_interval.Interval.center (Cv_interval.Box.get b i)) in
  let gens = ref [] in
  for i = n - 1 downto 0 do
    let r = Cv_interval.Interval.radius (Cv_interval.Box.get b i) in
    if r > 0. then begin
      let g = Array.make n 0. in
      g.(i) <- r;
      gens := g :: !gens
    end
  done;
  { center; generators = Array.of_list !gens }

(** Per-dimension deviation: sum of |generator| entries. *)
let deviation z i =
  Array.fold_left (fun acc g -> acc +. Float.abs g.(i)) 0. z.generators

(** [to_box z] concretises to per-dimension bounds [c_i ± dev_i]. *)
let to_box z =
  Array.init (dim z) (fun i ->
      let d = deviation z i in
      Cv_interval.Interval.make (z.center.(i) -. d) (z.center.(i) +. d))

let affine (w : Cv_linalg.Mat.t) bias z =
  if Cv_linalg.Mat.cols w <> dim z then invalid_arg "Zonotope.affine: dims";
  { center = Cv_linalg.Mat.matvec_add w z.center bias;
    generators = Array.map (fun g -> Cv_linalg.Mat.matvec w g) z.generators }

(* DeepZ ReLU: per dimension, with bounds [l, u]:
   - l >= 0: identity; u <= 0: zero;
   - unstable: y = λ x + μ ± μ where λ = u/(u−l), μ = −λ l / 2; realised
     by scaling the dimension's row of every generator by λ, setting
     center_i := λ c_i + μ, and appending a fresh generator with entry μ
     at dimension i. *)
let relu z =
  let n = dim z in
  let box = to_box z in
  let center = Array.copy z.center in
  let generators = Array.map Array.copy z.generators in
  let fresh = ref [] in
  for i = 0 to n - 1 do
    let iv = Cv_interval.Box.get box i in
    let l = Cv_interval.Interval.lo iv and u = Cv_interval.Interval.hi iv in
    if u <= 0. then begin
      center.(i) <- 0.;
      Array.iter (fun g -> g.(i) <- 0.) generators;
    end
    else if l < 0. then begin
      let lambda = u /. (u -. l) in
      let mu = -.lambda *. l /. 2. in
      center.(i) <- (lambda *. center.(i)) +. mu;
      Array.iter (fun g -> g.(i) <- lambda *. g.(i)) generators;
      let g = Array.make n 0. in
      g.(i) <- mu;
      fresh := g :: !fresh
    end
  done;
  { center; generators = Array.append generators (Array.of_list !fresh) }

(* Non-ReLU nonlinearities: concretise per dimension (drop relational
   information). Exact for stable monotone images of the box. *)
let monotone_concrete act z =
  let box = to_box z in
  let imgs = Array.map (Cv_nn.Activation.interval act) box in
  let n = dim z in
  let center = Array.init n (fun i -> Cv_interval.Interval.center imgs.(i)) in
  let gens = ref [] in
  for i = n - 1 downto 0 do
    let r = Cv_interval.Interval.radius imgs.(i) in
    if r > 0. then begin
      let g = Array.make n 0. in
      g.(i) <- r;
      gens := g :: !gens
    end
  done;
  { center; generators = Array.of_list !gens }

let apply_layer (l : Cv_nn.Layer.t) z =
  let pre = affine l.Cv_nn.Layer.weights l.Cv_nn.Layer.bias z in
  match l.Cv_nn.Layer.act with
  | Cv_nn.Activation.Relu -> relu pre
  | Cv_nn.Activation.Identity -> pre
  | (Cv_nn.Activation.Leaky_relu _ | Cv_nn.Activation.Sigmoid | Cv_nn.Activation.Tanh)
    as act ->
    monotone_concrete act pre

(** [num_generators z] — growth diagnostic for benches. *)
let num_generators z = Array.length z.generators

(** [reduce_order ~max_generators z] performs standard order reduction:
    when the generator count exceeds the budget, the smallest generators
    (by 1-norm) are replaced by their box over-approximation (one
    axis-aligned generator per dimension). Sound: the result contains
    the original zonotope. Deep networks add one generator per unstable
    ReLU, so unbounded growth would make late layers quadratic; the
    analyzer stays exact until the budget is hit. *)
let reduce_order ~max_generators z =
  let m = Array.length z.generators in
  if m <= max_generators then z
  else begin
    let d = dim z in
    (* Keep the largest (budget − d) generators, box the rest. *)
    let keep = max 0 (max_generators - d) in
    let order =
      Array.init m (fun i -> (Cv_linalg.Vec.norm1 z.generators.(i), i))
    in
    Array.sort (fun (a, _) (b, _) -> Float.compare b a) order;
    let kept = Array.init keep (fun k -> z.generators.(snd order.(k))) in
    let boxed = Array.make d 0. in
    for k = keep to m - 1 do
      let g = z.generators.(snd order.(k)) in
      for i = 0 to d - 1 do
        boxed.(i) <- boxed.(i) +. Float.abs g.(i)
      done
    done;
    let axis_gens = ref [] in
    for i = d - 1 downto 0 do
      if boxed.(i) > 0. then begin
        let g = Array.make d 0. in
        g.(i) <- boxed.(i);
        axis_gens := g :: !axis_gens
      end
    done;
    { z with generators = Array.append kept (Array.of_list !axis_gens) }
  end
