(** Symbolic interval analysis in the style of ReluVal / Neurify.

    Each neuron carries two symbolic linear expressions over the network
    inputs — a lower and an upper bound — together with the input box
    needed to concretise them. Affine layers propagate the expressions
    exactly (sign-splitting per weight); unstable ReLUs relax the upper
    expression by the standard triangle slope and drop the lower to 0.
    This is the domain the paper's experiment uses (via the ReluVal
    tool) to produce its per-neuron state abstractions. *)

(** A symbolic linear expression [coeffs · x + const] over the inputs. *)
type linexp = { coeffs : float array; const : float }

type t = {
  input : Cv_interval.Box.t;  (** box over which expressions concretise *)
  lower : linexp array;  (** per-neuron symbolic lower bound *)
  upper : linexp array;  (** per-neuron symbolic upper bound *)
}

let name = "symint"

let dim a = Array.length a.lower

(** Concretise a linear expression to an interval over the input box
    (exact: split coefficients by sign). *)
let concretize_linexp box e =
  let lo = ref e.const and hi = ref e.const in
  for j = 0 to Array.length e.coeffs - 1 do
    let c = e.coeffs.(j) in
    let iv = Cv_interval.Box.get box j in
    if c >= 0. then begin
      lo := !lo +. (c *. Cv_interval.Interval.lo iv);
      hi := !hi +. (c *. Cv_interval.Interval.hi iv)
    end
    else begin
      lo := !lo +. (c *. Cv_interval.Interval.hi iv);
      hi := !hi +. (c *. Cv_interval.Interval.lo iv)
    end
  done;
  Cv_interval.Interval.make !lo !hi

(** Concrete interval of one neuron: lower bound of the lower expression,
    upper bound of the upper expression. *)
let neuron_interval a i =
  let lo = Cv_interval.Interval.lo (concretize_linexp a.input a.lower.(i)) in
  let hi = Cv_interval.Interval.hi (concretize_linexp a.input a.upper.(i)) in
  (* Float relaxations can cross by a few ulps; normalise. *)
  if lo > hi then Cv_interval.Interval.point (0.5 *. (lo +. hi))
  else Cv_interval.Interval.make lo hi

let of_box b =
  let n = Cv_interval.Box.dim b in
  let identity i =
    { coeffs = Array.init n (fun j -> if i = j then 1. else 0.); const = 0. }
  in
  { input = b; lower = Array.init n identity; upper = Array.init n identity }

(* Affine image: per output neuron, combine the input expressions picking
   lower/upper according to the weight sign. *)
let affine (w : Cv_linalg.Mat.t) bias a =
  let rows = Cv_linalg.Mat.rows w and cols = Cv_linalg.Mat.cols w in
  if cols <> dim a then invalid_arg "Symint.affine: dimension mismatch";
  let in_dim = Cv_interval.Box.dim a.input in
  let combine pick_lo i =
    let coeffs = Array.make in_dim 0. in
    let const = ref bias.(i) in
    for j = 0 to cols - 1 do
      let wij = Cv_linalg.Mat.get w i j in
      if wij <> 0. then begin
        (* For the lower expression of the output: positive weight takes
           the input's lower expression, negative takes the upper; and
           dually for the output's upper expression. *)
        let src =
          if (wij > 0. && pick_lo) || (wij < 0. && not pick_lo) then a.lower.(j)
          else a.upper.(j)
        in
        for k = 0 to in_dim - 1 do
          coeffs.(k) <- coeffs.(k) +. (wij *. src.coeffs.(k))
        done;
        const := !const +. (wij *. src.const)
      end
    done;
    { coeffs; const = !const }
  in
  { input = a.input;
    lower = Array.init rows (combine true);
    upper = Array.init rows (combine false) }

let zero_exp n = { coeffs = Array.make n 0.; const = 0. }

(* ReLU on the symbolic element. *)
let relu a =
  let n = dim a in
  let in_dim = Cv_interval.Box.dim a.input in
  let lower = Array.make n (zero_exp in_dim) in
  let upper = Array.make n (zero_exp in_dim) in
  for i = 0 to n - 1 do
    let lo_iv = concretize_linexp a.input a.lower.(i) in
    let up_iv = concretize_linexp a.input a.upper.(i) in
    let l = Cv_interval.Interval.lo lo_iv in
    let u = Cv_interval.Interval.hi up_iv in
    if l >= 0. then begin
      lower.(i) <- a.lower.(i);
      upper.(i) <- a.upper.(i)
    end
    else if u <= 0. then begin
      lower.(i) <- zero_exp in_dim;
      upper.(i) <- zero_exp in_dim
    end
    else begin
      (* Unstable: lower := 0. For the upper expression, let [l_u, u] be
         its own concrete range. ReLU(z(x)) ≤ ReLU(ub(x)); when l_u ≥ 0
         that is just ub(x), otherwise the chord s(t − l_u) with
         s = u/(u − l_u) over-approximates ReLU(t) on [l_u, u] (ReLU is
         convex), applied at t = ub(x). *)
      let l_u = Cv_interval.Interval.lo up_iv in
      lower.(i) <- zero_exp in_dim;
      if l_u >= 0. then upper.(i) <- a.upper.(i)
      else begin
        let s = if u -. l_u <= 0. then 0. else u /. (u -. l_u) in
        upper.(i) <-
          { coeffs = Array.map (fun c -> s *. c) a.upper.(i).coeffs;
            const = s *. (a.upper.(i).const -. l_u) }
      end
    end
  done;
  { a with lower; upper }

(* Monotone non-linearities other than ReLU: fall back to concrete
   intervals (constant expressions). Sound, loses the symbolic part. *)
let monotone_concrete act a =
  let n = dim a in
  let in_dim = Cv_interval.Box.dim a.input in
  let lower = Array.make n (zero_exp in_dim) in
  let upper = Array.make n (zero_exp in_dim) in
  for i = 0 to n - 1 do
    let iv = Cv_nn.Activation.interval act (neuron_interval a i) in
    lower.(i) <- { coeffs = Array.make in_dim 0.; const = Cv_interval.Interval.lo iv };
    upper.(i) <- { coeffs = Array.make in_dim 0.; const = Cv_interval.Interval.hi iv }
  done;
  { a with lower; upper }

(* Leaky ReLU: for stable neurons exact; unstable neurons fall back to
   concrete bounds (sound and simple; the verified head uses plain
   ReLU). *)
let leaky_relu slope a =
  let n = dim a in
  let changed = ref false in
  for i = 0 to n - 1 do
    let iv = neuron_interval a i in
    if Cv_interval.Interval.lo iv < 0. && Cv_interval.Interval.hi iv > 0. then
      changed := true
  done;
  if not !changed then
    (* All neurons stable: negative ones scale by slope, positive ones
       pass through. *)
    let scale_if_neg i e =
      let iv = neuron_interval a i in
      if Cv_interval.Interval.hi iv <= 0. then
        { coeffs = Array.map (fun c -> slope *. c) e.coeffs; const = slope *. e.const }
      else e
    in
    { a with
      lower = Array.mapi (fun i _ -> scale_if_neg i a.lower.(i)) a.lower;
      upper = Array.mapi (fun i _ -> scale_if_neg i a.upper.(i)) a.upper }
  else monotone_concrete (Cv_nn.Activation.Leaky_relu slope) a

let apply_layer (l : Cv_nn.Layer.t) a =
  let pre = affine l.Cv_nn.Layer.weights l.Cv_nn.Layer.bias a in
  match l.Cv_nn.Layer.act with
  | Cv_nn.Activation.Relu -> relu pre
  | Cv_nn.Activation.Identity -> pre
  | Cv_nn.Activation.Leaky_relu slope -> leaky_relu slope pre
  | (Cv_nn.Activation.Sigmoid | Cv_nn.Activation.Tanh) as act ->
    monotone_concrete act pre

let to_box a = Array.init (dim a) (neuron_interval a)
