(** The interval (box) abstract domain.

    The cheapest and least precise transformer: per-neuron lower/upper
    bounds with no relational information. This is the "boxed
    abstraction" the paper's Figure 2 example uses for its interval
    analysis, and the baseline in the precision ablation. *)

type t = Cv_interval.Box.t

let name = "box"

let of_box b = b

let apply_layer (l : Cv_nn.Layer.t) b =
  let pre = Transformer.pre_activation_box l b in
  Array.map (Cv_nn.Activation.interval l.Cv_nn.Layer.act) pre

let to_box b = b

let dim = Cv_interval.Box.dim
