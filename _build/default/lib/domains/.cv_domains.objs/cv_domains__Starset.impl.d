lib/domains/starset.ml: Array Cv_interval Cv_linalg Cv_lp Cv_nn Float Fun List
