lib/domains/zonotope.ml: Array Cv_interval Cv_linalg Cv_nn Float
