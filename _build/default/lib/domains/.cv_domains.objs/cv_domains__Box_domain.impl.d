lib/domains/box_domain.ml: Array Cv_interval Cv_nn Transformer
