lib/domains/transformer.ml: Array Cv_interval Cv_linalg Cv_nn
