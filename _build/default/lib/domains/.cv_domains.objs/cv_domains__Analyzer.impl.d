lib/domains/analyzer.ml: Array Box_domain Cv_interval Cv_nn Deeppoly Starset Symint Transformer Zonotope
