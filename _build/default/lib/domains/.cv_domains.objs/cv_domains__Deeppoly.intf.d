lib/domains/deeppoly.mli: Cv_interval Cv_nn
