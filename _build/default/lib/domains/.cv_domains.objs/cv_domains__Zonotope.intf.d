lib/domains/zonotope.mli: Cv_interval Cv_nn
