lib/domains/box_domain.mli: Cv_interval Cv_nn
