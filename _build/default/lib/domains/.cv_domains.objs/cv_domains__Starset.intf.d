lib/domains/starset.mli: Cv_interval Cv_nn
