lib/domains/symint.mli: Cv_interval Cv_linalg Cv_nn
