lib/domains/analyzer.mli: Box_domain Cv_interval Cv_nn Deeppoly Starset Symint Transformer Zonotope
