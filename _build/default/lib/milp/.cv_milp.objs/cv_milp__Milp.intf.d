lib/milp/milp.mli: Cv_lp
