lib/milp/milp.ml: Array Cv_lp Float List Option
