lib/milp/relu_encoding.mli: Cv_interval Cv_linalg Cv_lp Cv_nn Milp
