lib/milp/relu_encoding.ml: Array Cv_domains Cv_interval Cv_linalg Cv_lp Cv_nn Cv_util Float Hashtbl List Milp Option Printf
