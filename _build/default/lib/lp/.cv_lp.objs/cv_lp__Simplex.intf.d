lib/lp/simplex.mli:
