lib/lp/lp.mli:
