(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation on the synthetic platform, followed by the ablation
   studies called out in DESIGN.md and a Bechamel micro-benchmark suite.

   Run with: dune exec bench/main.exe
   (append "--quick" to shrink the Table I statistics for smoke runs)

   Sections:
     [Table I]  incremental vs original verification time, 4 cases
     [Fig 1]    abstract-vs-exact reach on the enlarged domain
     [Fig 2]    the worked MILP example (expects 6.2 / 12 / 12.4)
     [Fig 3]    waypoints of the DNN on the race track (ASCII + series)
     [Fig 4]    architecture of the verified network
     [Ablation] domains, engines, Lipschitz estimators, parallelism,
                proposition firing order
     [Micro]    Bechamel Test.make per core operation *)

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

(* Arm CONTIVER_FAULTS so the CI chaos matrix can run the whole bench
   under injected solver faults and diff the verdicts. *)
let () = Cv_util.Fault.init_from_env ()

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let time_runs = if quick then 1 else 3

(* ------------------------------------------------------------------ *)
(* Shared experiment                                                   *)
(* ------------------------------------------------------------------ *)

let exp = lazy (Cv_vehicle.Pipeline.build ())

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

(* Case i (1-based): the proof of head (i-1) is reused
   - SVuDC: head (i-1) under the enlarged monitored domain;
   - SVbTV: head (i-1) fine-tuned into head i, same enlarged domain.
   The original time is a from-scratch sound-and-complete solve (exact
   MILP output range) of head (i-1); the SVbTV "parallel" column uses
   the paper's accounting (max over independent subproblems,
   footnote 3). *)
let table1 () =
  banner "Table I: time savings from incremental verification";
  let exp = Lazy.force exp in
  let heads = exp.Cv_vehicle.Pipeline.heads in
  let prop = Cv_vehicle.Pipeline.property exp in
  let new_din = exp.Cv_vehicle.Pipeline.enlarged_din in
  Printf.printf
    "verified head: %s; OOD events: %d (pattern flags: %d); kappa: %.4f\n"
    (Cv_nn.Describe.shape_string heads.(0))
    exp.Cv_vehicle.Pipeline.ood_events exp.Cv_vehicle.Pipeline.pattern_flags
    exp.Cv_vehicle.Pipeline.kappa;
  Printf.printf "%-8s %-13s %-28s %-28s\n" "case ID" "original (s)"
    "SVuDC time / original time" "SVbTV time / original time";
  let paper_svudc = [| 5.27; 0.72; 0.16; 1.34 |] in
  let paper_svbtv = [| 37.52; 4.19; 4.68; 8.52 |] in
  for case = 1 to Array.length heads - 1 do
    let old_net = heads.(case - 1) and new_net = heads.(case) in
    (* Original: median of repeated from-scratch solves. *)
    let original, orig_t =
      Cv_util.Timer.repeat_median ~runs:time_runs (fun () ->
          Cv_core.Strategy.solve_original_exact old_net prop)
    in
    let artifact =
      { original.Cv_core.Strategy.artifact with
        Cv_artifacts.Artifacts.solve_seconds = orig_t }
    in
    let svudc_report, svudc_t =
      Cv_util.Timer.repeat_median ~runs:time_runs (fun () ->
          Cv_core.Strategy.solve_svudc
            (Cv_core.Problem.svudc ~net:old_net ~artifact ~new_din))
    in
    let svbtv_report, svbtv_t =
      Cv_util.Timer.repeat_median ~runs:time_runs (fun () ->
          Cv_core.Strategy.solve_svbtv
            (Cv_core.Problem.svbtv ~old_net ~new_net ~artifact ~new_din))
    in
    let verdict_str r =
      match r.Cv_core.Report.verdict with
      | Cv_core.Report.Safe -> "safe"
      | Cv_core.Report.Unsafe _ -> "UNSAFE"
      | Cv_core.Report.Inconclusive _ -> "inconclusive"
      | Cv_core.Report.Exhausted _ -> "exhausted"
    in
    Printf.printf "%-8d %-13.3f %-28s %-28s\n" case orig_t
      (Printf.sprintf "%.3f%% (%s, paper %.2f%%)"
         (100. *. svudc_t /. orig_t)
         (verdict_str svudc_report)
         paper_svudc.(case - 1))
      (Printf.sprintf "%.3f%% (%s, paper %.2f%%)"
         (100. *. svbtv_t /. orig_t)
         (verdict_str svbtv_report)
         paper_svbtv.(case - 1))
  done;
  Printf.printf
    "(shape target: every incremental entry well below 100%%, as in the paper)\n"

(* ------------------------------------------------------------------ *)
(* A second Table I under ReluVal-style accounting — the closest match
   to what the paper's tooling actually did. The original verification
   is a bisection (split-certificate) proof of a property tight enough
   to need real splitting; the incremental SVbTV step revalidates the
   stored leaves on the fine-tuned network with one-shot symbolic
   intervals (no new splitting). The tight D_out sits between the exact
   output range and the one-shot symbolic reach (gamma of the gap), so
   the splitting workload is controlled; the exact range used to
   position it is not charged to either side. *)
let table1_splitcert () =
  banner "Table I (ReluVal-style accounting: split certificates)";
  let exp = Lazy.force exp in
  let heads = exp.Cv_vehicle.Pipeline.heads in
  let din = exp.Cv_vehicle.Pipeline.din in
  let gamma = 0.4 in
  let cases = if quick then 1 else 2 in
  Printf.printf "%-8s %-8s %-14s %-16s %-10s\n" "case ID" "leaves"
    "original (s)" "revalidate (s)" "ratio";
  for case = 1 to cases do
    let old_net = heads.(case - 1) and new_net = heads.(case) in
    let exact = Cv_verify.Range.exact_range old_net ~din in
    let sym =
      Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Symint old_net din
    in
    let dout_tight =
      Cv_interval.Box.make
        (Array.init (Cv_interval.Box.dim sym) (fun i ->
             let e = Cv_interval.Box.get exact.Cv_verify.Range.range i in
             let s = Cv_interval.Box.get sym i in
             Cv_interval.Interval.make
               (Cv_util.Float_utils.lerp (Cv_interval.Interval.lo e)
                  (Cv_interval.Interval.lo s) gamma)
               (Cv_util.Float_utils.lerp (Cv_interval.Interval.hi e)
                  (Cv_interval.Interval.hi s) gamma)))
    in
    let cert, orig_t =
      Cv_util.Timer.time (fun () ->
          Cv_verify.Split_cert.prove ~budget:50_000 old_net ~input_box:din
            ~target:dout_tight)
    in
    match cert with
    | None ->
      Printf.printf "%-8d split budget exhausted (gamma=%.2f too tight)\n"
        case gamma
    | Some cert ->
      (* One incremental pass: revalidate every leaf and selectively
         re-split the failures (repair subsumes the revalidation). *)
      let repaired, incr_t =
        Cv_util.Timer.time (fun () -> Cv_verify.Split_cert.repair cert new_net)
      in
      let note =
        match repaired with
        | Some cert' when
            Cv_verify.Split_cert.num_leaves cert'
            = Cv_verify.Split_cert.num_leaves cert ->
          ""
        | Some cert' ->
          Printf.sprintf " (%d leaves re-split)"
            (Cv_verify.Split_cert.num_leaves cert'
            - Cv_verify.Split_cert.num_leaves cert)
        | None -> " (repair failed)"
      in
      Printf.printf "%-8d %-8d %-14.3f %-16.4f %-10s\n" case
        (Cv_verify.Split_cert.num_leaves cert)
        orig_t incr_t
        (Printf.sprintf "%.3f%%%s" (100. *. incr_t /. orig_t) note)
  done;
  Printf.printf
    "(the revalidation IS the paper's 'set the bounds and check for violations';\n\
    \ under equal engines the saving comes from skipping the split search —\n\
    \ the dramatic Table-I ratios above additionally change engine class)\n"

(* ------------------------------------------------------------------ *)
(* Machine-readable perf trajectory                                    *)
(* ------------------------------------------------------------------ *)

(* One-shot vs SVuDC vs SVbTV wall-clock per case, with the headline
   effort counters of each phase (Cv_util.Metrics snapshot, now
   including the lp.warmstart.* and lp.phase1.skipped counters), written
   to BENCH_PR4.json in the working directory. CI runs the quick
   variant, validates the JSON, compares its verdicts against the
   committed BENCH_PR3.json baseline and archives it, so perf
   regressions leave a comparable artifact per commit. *)
let bench_trajectory () =
  (* BENCH_OUT lets CI write side-by-side trajectories (e.g. one per
     chaos-campaign fault spec) without clobbering the committed
     baseline. *)
  let out_path =
    match Sys.getenv_opt "BENCH_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_PR4.json"
  in
  banner (Printf.sprintf "Perf trajectory (%s)" out_path);
  let exp = Lazy.force exp in
  let heads = exp.Cv_vehicle.Pipeline.heads in
  let prop = Cv_vehicle.Pipeline.property exp in
  let new_din = exp.Cv_vehicle.Pipeline.enlarged_din in
  let phase f =
    Cv_util.Metrics.reset ();
    let result, seconds = Cv_util.Timer.time f in
    (result, seconds, Cv_util.Metrics.to_json ())
  in
  let report_verdict (r : Cv_core.Report.t) =
    match r.Cv_core.Report.verdict with
    | Cv_core.Report.Safe -> "safe"
    | Cv_core.Report.Unsafe _ -> "unsafe"
    | Cv_core.Report.Inconclusive _ -> "inconclusive"
    | Cv_core.Report.Exhausted _ -> "exhausted"
  in
  let entry ~seconds ~verdict ~metrics =
    Cv_util.Json.Obj
      [ ("seconds", Cv_util.Json.Num seconds);
        ("verdict", Cv_util.Json.Str verdict);
        ("metrics", metrics) ]
  in
  let cases = if quick then 1 else Array.length heads - 1 in
  let case_rows =
    List.init cases (fun i ->
        let case = i + 1 in
        let old_net = heads.(case - 1) and new_net = heads.(case) in
        let original, orig_t, orig_m =
          phase (fun () -> Cv_core.Strategy.solve_original_exact old_net prop)
        in
        let artifact =
          { original.Cv_core.Strategy.artifact with
            Cv_artifacts.Artifacts.solve_seconds = orig_t }
        in
        let svudc_report, svudc_t, svudc_m =
          phase (fun () ->
              Cv_core.Strategy.solve_svudc
                (Cv_core.Problem.svudc ~net:old_net ~artifact ~new_din))
        in
        let svbtv_report, svbtv_t, svbtv_m =
          phase (fun () ->
              Cv_core.Strategy.solve_svbtv
                (Cv_core.Problem.svbtv ~old_net ~new_net ~artifact ~new_din))
        in
        Printf.printf
          "case %d: original %.3fs, svudc %.4fs (%s), svbtv %.4fs (%s)\n" case
          orig_t svudc_t
          (report_verdict svudc_report)
          svbtv_t
          (report_verdict svbtv_report);
        Cv_util.Json.Obj
          [ ("case", Cv_util.Json.Num (float_of_int case));
            ( "original",
              entry ~seconds:orig_t
                ~verdict:
                  (if original.Cv_core.Strategy.proved then "safe"
                   else "not-proved")
                ~metrics:orig_m );
            ( "svudc",
              entry ~seconds:svudc_t
                ~verdict:(report_verdict svudc_report)
                ~metrics:svudc_m );
            ( "svbtv",
              entry ~seconds:svbtv_t
                ~verdict:(report_verdict svbtv_report)
                ~metrics:svbtv_m ) ])
  in
  let json =
    Cv_util.Json.Obj
      [ ("schema", Cv_util.Json.Str "contiver-bench-pr4-v1");
        ("quick", Cv_util.Json.Bool quick);
        ("cases", Cv_util.Json.List case_rows) ]
  in
  let path = out_path in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Cv_util.Json.to_string json));
  Printf.printf "trajectory written to %s\n" path

(* ------------------------------------------------------------------ *)
(* Batch throughput                                                    *)
(* ------------------------------------------------------------------ *)

(* The PR 7 headline: N queries sharing one network through the batch
   scheduler (content-addressed artifact cache + worker pool) against N
   cold one-shot invocations. The abstract chain is built once and hit
   N-1 times, so the batch wall-clock must land strictly below the
   summed one-shot baseline. Written to BENCH_PR7.json; CI validates
   the schema, the verdict agreement and the speedup, then archives
   it. *)
let bench_batch () =
  let out_path =
    match Sys.getenv_opt "BENCH_PR7_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_PR7.json"
  in
  banner (Printf.sprintf "Batch throughput (%s)" out_path);
  (* The paper's continuous-verification scenario: every CI run
     re-checks many output properties of the same deployed network.
     The head is wide enough that one symbolic-interval chain build
     dominates per-query overhead by orders of magnitude. *)
  let rng = Cv_util.Rng.create 11 in
  let net =
    Cv_nn.Network.random ~rng ~dims:[ 32; 256; 256; 256; 1 ]
      ~act:Cv_nn.Activation.Relu ()
  in
  let din = Cv_interval.Box.uniform 32 ~lo:(-1.) ~hi:1. in
  let chain =
    Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Symint net din
  in
  let last = chain.(Array.length chain - 1) in
  let env_int name default =
    match Sys.getenv_opt name with
    | Some s -> (try int_of_string s with _ -> default)
    | _ -> default
  in
  let queries = env_int "BENCH_PR7_QUERIES" 8 in
  let workers = env_int "BENCH_PR7_WORKERS" 4 in
  (* Distinct provable properties over one (net, D_in): each widens the
     chain's own output box by a different margin, so every query is
     decided by the cached abstraction and only the first pays for the
     build. *)
  let jobs =
    List.init queries (fun i ->
        let dout =
          Cv_interval.Box.expand (0.05 +. (0.01 *. float_of_int i)) last
        in
        let prop = Cv_verify.Property.make ~din ~dout in
        { Cv_core.Batch.id = Printf.sprintf "q%d" (i + 1);
          spec =
            Cv_core.Batch.Verify
              { net; prop; exact = false; artifact_out = None };
          timeout = None })
  in
  let verdicts t =
    List.map
      (fun (r : Cv_core.Batch.job_result) ->
        Cv_core.Batch.verdict_name r.Cv_core.Batch.verdict)
      t.Cv_core.Batch.results
  in
  (* Cold baseline: every query is its own batch of one, no cache. *)
  let one_shot =
    List.map
      (fun job ->
        let t = Cv_core.Batch.run ~config:Cv_core.Batch.default_config [ job ] in
        (List.hd (verdicts t), t.Cv_core.Batch.wall_seconds))
      jobs
  in
  let one_shot_seconds = List.fold_left (fun a (_, s) -> a +. s) 0. one_shot in
  let cache = Cv_artifacts.Cache.create () in
  let config =
    { Cv_core.Batch.default_config with
      Cv_core.Batch.jobs = workers;
      cache = Some cache }
  in
  let batch = Cv_core.Batch.run ~config jobs in
  let stats =
    match batch.Cv_core.Batch.cache_stats with
    | Some s -> s
    | None -> { Cv_artifacts.Cache.hits = 0; misses = 0; evictions = 0 }
  in
  let verdicts_match =
    List.equal String.equal (List.map fst one_shot) (verdicts batch)
  in
  let speedup =
    one_shot_seconds /. Float.max 1e-9 batch.Cv_core.Batch.wall_seconds
  in
  Printf.printf
    "%d queries, %d workers: one-shot sum %.4fs, batch %.4fs (%.1fx)\n\
     cache: %d hits, %d misses; verdicts %s\n"
    queries workers one_shot_seconds batch.Cv_core.Batch.wall_seconds speedup
    stats.Cv_artifacts.Cache.hits stats.Cv_artifacts.Cache.misses
    (if verdicts_match then "match" else "DIVERGE");
  let json =
    Cv_util.Json.Obj
      [ ("schema", Cv_util.Json.Str "contiver-bench-pr7-v1");
        ("quick", Cv_util.Json.Bool quick);
        ("queries", Cv_util.Json.of_int queries);
        ("jobs", Cv_util.Json.of_int workers);
        ("one_shot_seconds", Cv_util.Json.Num one_shot_seconds);
        ("batch_seconds", Cv_util.Json.Num batch.Cv_core.Batch.wall_seconds);
        ("speedup", Cv_util.Json.Num speedup);
        ("cache", Cv_artifacts.Cache.stats_to_json stats);
        ( "verdicts",
          Cv_util.Json.List
            (List.map (fun v -> Cv_util.Json.Str v) (verdicts batch)) );
        ("verdicts_match", Cv_util.Json.Bool verdicts_match) ]
  in
  let oc = open_out out_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Cv_util.Json.to_string json));
  Printf.printf "batch throughput written to %s\n" out_path

(* ------------------------------------------------------------------ *)
(* PR 9: blocked-kernel propagation throughput. Each abstract domain is
   raced against the verbatim historical implementation in [Baseline]
   (per-call sign splits, per-neuron records, per-generator matvecs) on
   the fig2 toy net and a 32x256^3x1 head. Reaches must agree within
   the verdict tolerance, the committed artifact carries the speedups
   and a steady-state allocation figure, and the PR 7 batch verdicts
   are echoed so CI can prove the kernels changed no decision. *)

let bench_kernels () =
  let out_path =
    match Sys.getenv_opt "BENCH_PR9_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_PR9.json"
  in
  banner (Printf.sprintf "Kernel throughput (%s)" out_path);
  let fig2_net =
    Cv_nn.Network.of_list
      [ Cv_nn.Layer.make
          (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
          [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
        Cv_nn.Layer.make
          (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
          [| 0. |] Cv_nn.Activation.Relu ]
  in
  let fig2_din = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let big_net =
    Cv_nn.Network.random ~rng:(Cv_util.Rng.create 11)
      ~dims:[ 32; 256; 256; 256; 1 ] ~act:Cv_nn.Activation.Relu ()
  in
  let big_din = Cv_interval.Box.uniform 32 ~lo:(-1.) ~hi:1. in
  let domains =
    [ ("box",
       (module Cv_domains.Box_domain : Cv_domains.Transformer.DOMAIN),
       Baseline.box_output);
      ("symint",
       (module Cv_domains.Symint : Cv_domains.Transformer.DOMAIN),
       Baseline.symint_output);
      ("zonotope",
       (module Cv_domains.Zonotope : Cv_domains.Transformer.DOMAIN),
       Baseline.zonotope_output);
      ("deeppoly",
       (module Cv_domains.Deeppoly : Cv_domains.Transformer.DOMAIN),
       Baseline.deeppoly_output) ]
  in
  (* Propagation through the prepared (memoized) layers — the steady
     state every verify/svudc/svbtv/batch call runs in after the first
     query on a network. *)
  let new_runner (module D : Cv_domains.Transformer.DOMAIN) net =
    let prep = Cv_nn.Network.prepared net in
    fun din ->
      D.to_box
        (Array.fold_left (fun a p -> D.apply_prepared p a) (D.of_box din) prep)
  in
  (* Min-over-rounds of (wall seconds / iters): robust against noise
     from the shared CI runner, deterministic in everything else. *)
  let time_min ~rounds ~iters f =
    let best = ref infinity in
    for _ = 1 to rounds do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        f ()
      done;
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int iters in
      if dt < !best then best := dt
    done;
    !best
  in
  let rounds = if quick then 2 else 4 in
  let nets =
    [ ("fig2", fig2_net, fig2_din, if quick then 100 else 400);
      ("net32x256x3", big_net, big_din, if quick then 1 else 3) ]
  in
  let rows = ref [] in
  List.iter
    (fun (net_name, net, din, iters) ->
      let blayers = Baseline.of_network net in
      let layer_count = Array.length (Cv_nn.Network.layers net) in
      List.iter
        (fun (dom_name, dom, old_output) ->
          let new_output = new_runner dom net in
          let new_reach = new_output din in
          let old_reach = old_output blayers din in
          let reach_match =
            Cv_interval.Box.subset_tol ~tol:1e-6 new_reach old_reach
            && Cv_interval.Box.subset_tol ~tol:1e-6 old_reach new_reach
          in
          (* Same decision the verifier would make: does the reach stay
             inside a margin of the historical reach? *)
          let dout = Cv_interval.Box.expand 0.05 old_reach in
          let verdict_old = Cv_interval.Box.subset_tol old_reach dout in
          let verdict_new = Cv_interval.Box.subset_tol new_reach dout in
          let old_s =
            time_min ~rounds ~iters (fun () -> ignore (old_output blayers din))
          in
          let new_s =
            time_min ~rounds ~iters (fun () -> ignore (new_output din))
          in
          (* Steady-state allocation of one propagation through the new
             kernels (after the warmup above has populated the prepared
             memo and the workspace arenas). *)
          let b0 = Gc.allocated_bytes () in
          ignore (new_output din);
          let bytes_per_round = Gc.allocated_bytes () -. b0 in
          let speedup = old_s /. Float.max 1e-12 new_s in
          Printf.printf
            "%-14s %-9s old %.3es new %.3es (%5.2fx) %s %s %.0fB/round\n"
            net_name dom_name old_s new_s speedup
            (if reach_match then "reach=" else "reach DIVERGES")
            (if verdict_old = verdict_new then "verdict=" else "verdict DIVERGES")
            bytes_per_round;
          rows :=
            Cv_util.Json.Obj
              [ ("net", Cv_util.Json.Str net_name);
                ("domain", Cv_util.Json.Str dom_name);
                ("old_seconds", Cv_util.Json.Num old_s);
                ("new_seconds", Cv_util.Json.Num new_s);
                ("speedup", Cv_util.Json.Num speedup);
                ( "layers_per_second",
                  Cv_util.Json.Num
                    (float_of_int layer_count /. Float.max 1e-12 new_s) );
                ("bytes_per_round", Cv_util.Json.Num bytes_per_round);
                ("reach_match", Cv_util.Json.Bool reach_match);
                ( "verdict",
                  Cv_util.Json.Str (if verdict_new then "safe" else "unknown") );
                ( "verdict_match",
                  Cv_util.Json.Bool (verdict_old = verdict_new) ) ]
            :: !rows)
        domains)
    nets;
  (* Echo the PR 7 batch verdicts through the new kernels and diff them
     against the committed artifact: the kernel rewrite must not move a
     single decision. *)
  let chain =
    Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Symint big_net big_din
  in
  let last = chain.(Array.length chain - 1) in
  let jobs =
    List.init 8 (fun i ->
        let dout =
          Cv_interval.Box.expand (0.05 +. (0.01 *. float_of_int i)) last
        in
        let prop = Cv_verify.Property.make ~din:big_din ~dout in
        { Cv_core.Batch.id = Printf.sprintf "q%d" (i + 1);
          spec =
            Cv_core.Batch.Verify
              { net = big_net; prop; exact = false; artifact_out = None };
          timeout = None })
  in
  let batch = Cv_core.Batch.run ~config:Cv_core.Batch.default_config jobs in
  let batch_verdicts =
    List.map
      (fun (r : Cv_core.Batch.job_result) ->
        Cv_core.Batch.verdict_name r.Cv_core.Batch.verdict)
      batch.Cv_core.Batch.results
  in
  let pr7_path =
    match Sys.getenv_opt "BENCH_PR7_BASELINE" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_PR7.json"
  in
  let pr7_verdicts =
    try
      let ic = open_in pr7_path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Some
        (List.map Cv_util.Json.to_str
           (Cv_util.Json.to_list
              (Cv_util.Json.member "verdicts" (Cv_util.Json.parse s))))
    with _ -> None
  in
  let verdicts_match_pr7 =
    match pr7_verdicts with
    | Some vs -> List.equal String.equal vs batch_verdicts
    | None -> true (* no committed baseline to compare against *)
  in
  Printf.printf "batch verdicts: %s (%s vs %s)\n"
    (String.concat "," batch_verdicts)
    (if verdicts_match_pr7 then "match" else "DIVERGE")
    pr7_path;
  let json =
    Cv_util.Json.Obj
      [ ("schema", Cv_util.Json.Str "contiver-bench-pr9-v1");
        ("quick", Cv_util.Json.Bool quick);
        ("domains", Cv_util.Json.List (List.rev !rows));
        ( "batch_verdicts",
          Cv_util.Json.List
            (List.map (fun v -> Cv_util.Json.Str v) batch_verdicts) );
        ("verdicts_match_pr7", Cv_util.Json.Bool verdicts_match_pr7) ]
  in
  let oc = open_out out_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Cv_util.Json.to_string json));
  Printf.printf "kernel throughput written to %s\n" out_path

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  banner "Figure 1: why exact local checks rescue proof reuse";
  let exp = Lazy.force exp in
  let head = exp.Cv_vehicle.Pipeline.heads.(0) in
  let din = exp.Cv_vehicle.Pipeline.din in
  let new_din = exp.Cv_vehicle.Pipeline.enlarged_din in
  (* Stored S_2 (plain inductive chain — no widening, the tight regime
     of the paper's figure), the abstract transformer image of the
     enlarged domain, and the exact MILP reach of the enlarged domain,
     all at layer 2. *)
  let chain =
    Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Symint head din
  in
  let s2 = chain.(1) in
  let prefix2 = Cv_nn.Network.prefix head 2 in
  let abstract_enlarged =
    (* Same transformer family as the stored chain, re-run on the
       enlarged domain (fig 1-b). *)
    Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Symint prefix2 new_din
    |> fun s -> s.(1)
  in
  let exact = Cv_verify.Range.exact_range prefix2 ~din:new_din in
  let w = Cv_interval.Box.total_width in
  Printf.printf "stored S_2 total width                      : %8.3f\n" (w s2);
  Printf.printf "abstract transformer on D_in ∪ Δ_in (fig 1-b): %7.3f %s\n"
    (w abstract_enlarged)
    (if Cv_interval.Box.subset_tol abstract_enlarged s2 then "⊆ S_2"
     else "⊄ S_2 — abstract reuse fails");
  Printf.printf "exact reach of D_in ∪ Δ_in (fig 1-c)        : %8.3f %s\n"
    (w exact.Cv_verify.Range.range)
    (if Cv_interval.Box.subset_tol exact.Cv_verify.Range.range s2 then
       "⊆ S_2 — proof reused via the exact local check"
     else "⊄ S_2");
  Printf.printf
    "(shape: exact ⊂ stored S_2 even when the one-shot abstract image overshoots)\n"

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  banner "Figure 2: the worked example (Equation 2)";
  let net =
    Cv_nn.Network.of_list
      [ Cv_nn.Layer.make
          (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
          [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
        Cv_nn.Layer.make
          (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
          [| 0. |] Cv_nn.Activation.Relu ]
  in
  let reach b = Cv_domains.Analyzer.output_box Cv_domains.Analyzer.Box net b in
  let original = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let enlarged = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1 in
  Printf.printf "interval bound on n4, original domain : %s (paper: [0, 12])\n"
    (Cv_interval.Box.to_string (reach original));
  Printf.printf "interval bound on n4, enlarged domain : %s (paper: [0, 12.4])\n"
    (Cv_interval.Box.to_string (reach enlarged));
  let enc = Cv_milp.Relu_encoding.encode ~net ~input_box:enlarged in
  (match Cv_milp.Relu_encoding.max_output enc ~output:0 with
  | Cv_milp.Milp.Optimal s ->
    Printf.printf "exact max of n4, enlarged domain      : %.4g (paper: 6.2)\n"
      s.Cv_milp.Milp.objective
  | _ -> print_endline "exact query failed")

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  banner "Figure 3: DNN waypoint output on the race track";
  let exp = Lazy.force exp in
  let track = exp.Cv_vehicle.Pipeline.track in
  let perception = exp.Cv_vehicle.Pipeline.perception in
  let rng = Cv_util.Rng.create 1234 in
  let monitor = Cv_monitor.Monitor.of_box exp.Cv_vehicle.Pipeline.din in
  let state = Cv_vehicle.Controller.init track ~s:0. in
  let _, trace =
    Cv_vehicle.Controller.drive ~rng ~track ~perception ~monitor ~steps:150
      state
  in
  let poses =
    List.filteri (fun i _ -> i mod 12 = 0) trace
    |> List.map (fun t -> t.Cv_vehicle.Controller.t_pose)
  in
  print_string (Cv_vehicle.Track.render track poses);
  Printf.printf "v_out series along the drive (every 10th frame):\n";
  List.iteri
    (fun i t ->
      if i mod 10 = 0 then
        Printf.printf "  frame %3d: v_out=%.3f waypoint=(%d, %d)%s\n" i
          t.Cv_vehicle.Controller.t_vout
          (fst (Cv_vehicle.Perception.waypoint perception
                  t.Cv_vehicle.Controller.t_vout))
          (snd (Cv_vehicle.Perception.waypoint perception
                  t.Cv_vehicle.Controller.t_vout))
          (if t.Cv_vehicle.Controller.t_ood then "  [OOD]" else ""))
    trace

(* ------------------------------------------------------------------ *)
(* Figure 4                                                            *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  banner "Figure 4: the verified network";
  let exp = Lazy.force exp in
  Printf.printf
    "camera %dx%d -> frozen extractor (conv stand-in) -> Flatten(%d) -> verified head:\n"
    exp.Cv_vehicle.Pipeline.perception.Cv_vehicle.Perception.camera
      .Cv_vehicle.Camera.width
    exp.Cv_vehicle.Pipeline.perception.Cv_vehicle.Perception.camera
      .Cv_vehicle.Camera.height
    (Cv_vehicle.Perception.feature_dim exp.Cv_vehicle.Pipeline.perception);
  print_string (Cv_nn.Describe.layer_table exp.Cv_vehicle.Pipeline.heads.(0))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_domains () =
  banner "Ablation: abstract-domain precision vs cost (verified head over D_in)";
  let exp = Lazy.force exp in
  let head = exp.Cv_vehicle.Pipeline.heads.(0) in
  let din = exp.Cv_vehicle.Pipeline.din in
  let exact = Cv_verify.Range.exact_range head ~din in
  let exact_w = Cv_interval.Box.total_width exact.Cv_verify.Range.range in
  Printf.printf "%-10s %-14s %-14s %-10s\n" "domain" "reach width"
    "vs exact" "time (ms)";
  Printf.printf "%-10s %-14.4f %-14s %-10s\n" "exact" exact_w "1.00x" "-";
  List.iter
    (fun kind ->
      let reach, dt =
        Cv_util.Timer.repeat_median ~runs:5 (fun () ->
            Cv_domains.Analyzer.output_box kind head din)
      in
      let w = Cv_interval.Box.total_width reach in
      Printf.printf "%-10s %-14.4f %-14s %-10.3f\n"
        (Cv_domains.Analyzer.domain_name kind)
        w
        (Printf.sprintf "%.2fx" (w /. exact_w))
        (dt *. 1000.))
    [ Cv_domains.Analyzer.Box; Cv_domains.Analyzer.Symint;
      Cv_domains.Analyzer.Zonotope; Cv_domains.Analyzer.Deeppoly;
      Cv_domains.Analyzer.Star ]

let ablation_engines () =
  banner "Ablation: exact-engine cost on the Prop 1 local subproblem";
  let exp = Lazy.force exp in
  let head = exp.Cv_vehicle.Pipeline.heads.(0) in
  let din = exp.Cv_vehicle.Pipeline.din in
  let new_din = exp.Cv_vehicle.Pipeline.enlarged_din in
  (* Plain chain: the stored S_2 is tight, so one-shot abstract engines
     fail on the enlarged domain and the exact engines must decide —
     exactly the situation the propositions are designed for. *)
  let chain =
    Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Symint head din
  in
  let prefix2 = Cv_nn.Network.prefix head 2 in
  Printf.printf "%-22s %-14s %-10s\n" "engine" "verdict" "time (ms)";
  List.iter
    (fun engine ->
      let verdict, dt =
        Cv_util.Timer.repeat_median ~runs:time_runs (fun () ->
            Cv_verify.Containment.check engine prefix2 ~input_box:new_din
              ~target:chain.(1))
      in
      Printf.printf "%-22s %-14s %-10.3f\n"
        (Cv_verify.Containment.engine_name engine)
        (match verdict with
        | Cv_verify.Containment.Proved -> "proved"
        | Cv_verify.Containment.Violated _ -> "violated"
        | Cv_verify.Containment.Unknown _ -> "unknown")
        (dt *. 1000.))
    [ Cv_verify.Containment.Abstract Cv_domains.Analyzer.Box;
      Cv_verify.Containment.Abstract Cv_domains.Analyzer.Symint;
      Cv_verify.Containment.Symint_split 256;
      Cv_verify.Containment.Milp ]

let ablation_lipschitz () =
  banner "Ablation: Lipschitz estimator tightness (verified head, Linf)";
  let exp = Lazy.force exp in
  let head = exp.Cv_vehicle.Pipeline.heads.(0) in
  let din = exp.Cv_vehicle.Pipeline.din in
  let rng = Cv_util.Rng.create 5 in
  let global = Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf head in
  let local = Cv_lipschitz.Lipschitz.local ~norm:Cv_lipschitz.Lipschitz.Linf head din in
  let sampled =
    Cv_lipschitz.Lipschitz.sampled_quotient ~samples:2000 ~rng
      ~norm:Cv_lipschitz.Lipschitz.Linf head din
  in
  Printf.printf "sampled difference quotient (lower bound) : %10.3f\n" sampled;
  Printf.printf "interval-aware local bound over D_in      : %10.3f (%.1fx)\n"
    local (local /. sampled);
  Printf.printf "global operator-norm product              : %10.3f (%.1fx)\n"
    global (global /. sampled);
  (* Over a narrow sub-box many ReLUs become provably inactive and the
     interval-aware bound pulls away from the global product. *)
  let narrow =
    Cv_interval.Box.of_center_radius (Cv_interval.Box.center din) 0.02
  in
  let local_narrow =
    Cv_lipschitz.Lipschitz.local ~norm:Cv_lipschitz.Lipschitz.Linf head narrow
  in
  let sampled_narrow =
    Cv_lipschitz.Lipschitz.sampled_quotient ~samples:2000 ~rng
      ~norm:Cv_lipschitz.Lipschitz.Linf head narrow
  in
  Printf.printf "local bound over a narrow sub-box         : %10.3f (sampled %.3f, global still %.3f)\n"
    local_narrow sampled_narrow global

let ablation_parallel () =
  banner "Ablation: parallel speedup of Prop 4 subproblems";
  let exp = Lazy.force exp in
  let heads = exp.Cv_vehicle.Pipeline.heads in
  let prop = Cv_vehicle.Pipeline.property exp in
  let original = Cv_core.Strategy.solve_original_exact heads.(0) prop in
  let p =
    Cv_core.Problem.svbtv ~old_net:heads.(0) ~new_net:heads.(1)
      ~artifact:original.Cv_core.Strategy.artifact
      ~new_din:exp.Cv_vehicle.Pipeline.enlarged_din
  in
  Printf.printf "%-10s %-12s\n" "domains" "wall (ms)";
  List.iter
    (fun domains ->
      let _, dt =
        Cv_util.Timer.repeat_median ~runs:time_runs (fun () ->
            Cv_core.Svbtv.prop4 ~domains p)
      in
      Printf.printf "%-10d %-12.3f\n" domains (dt *. 1000.))
    [ 1; 2; 4 ];
  let a = Cv_core.Svbtv.prop4 ~domains:1 p in
  Printf.printf
    "timing model: parallel=max over %d subproblems %.3fms, sequential sum %.3fms\n"
    a.Cv_core.Report.timing.Cv_core.Report.subproblems
    (a.Cv_core.Report.timing.Cv_core.Report.parallel *. 1000.)
    (a.Cv_core.Report.timing.Cv_core.Report.sequential *. 1000.)

let ablation_prop_order () =
  banner "Ablation: which proposition fires, and at what cost";
  let exp = Lazy.force exp in
  let heads = exp.Cv_vehicle.Pipeline.heads in
  let prop = Cv_vehicle.Pipeline.property exp in
  let new_din = exp.Cv_vehicle.Pipeline.enlarged_din in
  let original = Cv_core.Strategy.solve_original_exact heads.(0) prop in
  let artifact = original.Cv_core.Strategy.artifact in
  let svudc = Cv_core.Problem.svudc ~net:heads.(0) ~artifact ~new_din in
  Printf.printf "SVuDC attempts on the enlarged domain:\n";
  List.iter
    (fun (name, attempt) ->
      let a = attempt () in
      Printf.printf "  %-8s %-14s %8.3f ms   %s\n" name
        (match a.Cv_core.Report.outcome with
        | Cv_core.Report.Safe -> "safe"
        | Cv_core.Report.Unsafe _ -> "unsafe"
        | Cv_core.Report.Inconclusive _ -> "inconclusive"
        | Cv_core.Report.Exhausted _ -> "exhausted")
        (a.Cv_core.Report.timing.Cv_core.Report.wall *. 1000.)
        a.Cv_core.Report.detail)
    [ ("trivial", fun () -> Cv_core.Svudc.trivial svudc);
      ("prop3", fun () -> Cv_core.Svudc.prop3 svudc);
      ("prop1", fun () -> Cv_core.Svudc.prop1 svudc);
      ("prop2", fun () -> Cv_core.Svudc.prop2 svudc);
      ("dcover", fun () -> Cv_core.Svudc.delta_cover svudc) ];
  let svbtv =
    Cv_core.Problem.svbtv ~old_net:heads.(0) ~new_net:heads.(1) ~artifact
      ~new_din
  in
  Printf.printf "SVbTV attempts (head 1 -> head 2):\n";
  List.iter
    (fun (name, attempt) ->
      let a = attempt () in
      Printf.printf "  %-8s %-14s %8.3f ms   %s\n" name
        (match a.Cv_core.Report.outcome with
        | Cv_core.Report.Safe -> "safe"
        | Cv_core.Report.Unsafe _ -> "unsafe"
        | Cv_core.Report.Inconclusive _ -> "inconclusive"
        | Cv_core.Report.Exhausted _ -> "exhausted")
        (a.Cv_core.Report.timing.Cv_core.Report.wall *. 1000.)
        a.Cv_core.Report.detail)
    [ ("prop4", fun () -> Cv_core.Svbtv.prop4 svbtv);
      ("prop5", fun () -> Cv_core.Svbtv.prop5 ~anchors:[ 2 ] svbtv);
      ("fixer", fun () -> Cv_core.Fixer.repair svbtv);
      ("pdiff", fun () -> Cv_core.Diff_reuse.prop_diff svbtv);
      ( "prop6i",
        fun () -> Cv_core.Netabs_reuse.prop6_interval ~slack:0.02 svbtv );
      ( "leaves",
        fun () ->
          (* Build the split certificate on the fly (the artifact of a
             ReluVal-style original run) and revalidate it for head 2. *)
          match
            Cv_verify.Split_cert.prove heads.(0)
              ~input_box:prop.Cv_verify.Property.din
              ~target:prop.Cv_verify.Property.dout
          with
          | None ->
            { Cv_core.Report.name = "leaf-reuse";
              outcome = Cv_core.Report.Inconclusive "no certificate";
              timing = Cv_core.Report.sequential_timing 0.;
              detail = "" }
          | Some cert ->
            let artifact_with_cert =
              Cv_artifacts.Artifacts.make
                ?state_abstractions:
                  artifact.Cv_artifacts.Artifacts.state_abstractions
                ~lipschitz:artifact.Cv_artifacts.Artifacts.lipschitz
                ~split_cert:cert ~property:prop ~net:heads.(0)
                ~solver:"split" ~solve_seconds:1. ()
            in
            Cv_core.Svbtv.leaf_reuse
              (Cv_core.Problem.svbtv ~old_net:heads.(0) ~new_net:heads.(1)
                 ~artifact:artifact_with_cert ~new_din) ) ];
  (* Differential-analysis tightness: tracked difference vs the naive
     reach subtraction (the gap ReluDiff-style analyses close). *)
  let eps_diff =
    Cv_diffverify.Diffverify.max_output_delta ~old_net:heads.(0)
      ~new_net:heads.(1) new_din
  in
  let naive =
    Cv_diffverify.Diffverify.naive_bound ~old_net:heads.(0) ~new_net:heads.(1)
      new_din
  in
  let eps_naive =
    Array.fold_left
      (fun acc iv ->
        Float.max acc
          (Float.max
             (Float.abs (Cv_interval.Interval.lo iv))
             (Float.abs (Cv_interval.Interval.hi iv))))
      0. naive
  in
  Printf.printf
    "differential bound |f' − f| over enlarged domain: tracked ε=%.4g vs naive reach-subtraction %.4g (%.0fx tighter)\n"
    eps_diff eps_naive
    (eps_naive /. Float.max 1e-12 eps_diff)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  banner "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let exp = Lazy.force exp in
  let head = exp.Cv_vehicle.Pipeline.heads.(0) in
  let din = exp.Cv_vehicle.Pipeline.din in
  let new_din = exp.Cv_vehicle.Pipeline.enlarged_din in
  let chain =
    Cv_domains.Analyzer.abstractions ~widen:0.04 Cv_domains.Analyzer.Symint head
      din
  in
  let prefix2 = Cv_nn.Network.prefix head 2 in
  let x = Cv_interval.Box.center din in
  let fig2_box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1.1 in
  let fig2_net =
    Cv_nn.Network.of_list
      [ Cv_nn.Layer.make
          (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
          [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
        Cv_nn.Layer.make
          (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
          [| 0. |] Cv_nn.Activation.Relu ]
  in
  let tests =
    [ Test.make ~name:"nn-forward-pass"
        (Staged.stage (fun () -> ignore (Cv_nn.Network.eval head x)));
      Test.make ~name:"chain-box"
        (Staged.stage (fun () ->
             ignore
               (Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Box head din)));
      Test.make ~name:"chain-symint"
        (Staged.stage (fun () ->
             ignore
               (Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Symint head
                  din)));
      Test.make ~name:"chain-zonotope"
        (Staged.stage (fun () ->
             ignore
               (Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Zonotope
                  head din)));
      Test.make ~name:"chain-deeppoly"
        (Staged.stage (fun () ->
             ignore
               (Cv_domains.Analyzer.abstractions Cv_domains.Analyzer.Deeppoly
                  head din)));
      Test.make ~name:"table1-prop1-milp"
        (Staged.stage (fun () ->
             ignore
               (Cv_verify.Containment.check Cv_verify.Containment.Milp prefix2
                  ~input_box:new_din ~target:chain.(1))));
      Test.make ~name:"table1-prop4-layer"
        (Staged.stage (fun () ->
             let slice = Cv_nn.Network.slice head ~from_:1 ~to_:2 in
             ignore
               (Cv_verify.Containment.check Cv_verify.Containment.Milp slice
                  ~input_box:chain.(0) ~target:chain.(1))));
      Test.make ~name:"fig2-exact-milp"
        (Staged.stage (fun () ->
             let enc =
               Cv_milp.Relu_encoding.encode ~net:fig2_net ~input_box:fig2_box
             in
             ignore (Cv_milp.Relu_encoding.max_output enc ~output:0)));
      Test.make ~name:"lipschitz-global"
        (Staged.stage (fun () ->
             ignore
               (Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf
                  head)));
      Test.make ~name:"monitor-observe"
        (Staged.stage
           (let m = Cv_monitor.Monitor.of_box din in
            fun () -> ignore (Cv_monitor.Monitor.observe m x))) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.05 else 0.5))
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"contiver" tests) in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | Some (est :: _) -> est
        | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  Printf.printf "%-32s %14s\n" "benchmark" "ns/run";
  List.iter
    (fun (name, ns) -> Printf.printf "%-32s %14.1f\n" name ns)
    (List.sort compare !rows)

let () =
  (* Regenerate just the batch-throughput figure (BENCH_PR7.json)
     without paying for the full suite. *)
  if Array.exists (fun a -> a = "--only-batch") Sys.argv then begin
    bench_batch ();
    exit 0
  end;
  (* Regenerate just the kernel-throughput figure (BENCH_PR9.json). *)
  if Array.exists (fun a -> a = "--only-kernels") Sys.argv then begin
    bench_kernels ();
    exit 0
  end;
  table1 ();
  table1_splitcert ();
  bench_trajectory ();
  bench_batch ();
  bench_kernels ();
  fig1 ();
  fig2 ();
  fig3 ();
  fig4 ();
  ablation_domains ();
  ablation_engines ();
  ablation_lipschitz ();
  ablation_parallel ();
  ablation_prop_order ();
  micro ();
  print_newline ()
