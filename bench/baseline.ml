(* Historical (pre-kernel) abstract-interpretation implementations, kept
   verbatim for the PR 9 kernel bench: the old-vs-new comparison is only
   honest if the "old" side really runs the per-call sign splits, boxed
   per-neuron records and per-generator matvecs the kernel layer
   replaced. Everything here works on its own matrix type so none of the
   blocked kernels in [Cv_linalg.Mat] can leak into the baseline
   timings. *)

type bmat = { rows : int; cols : int; data : float array }

let bzeros rows cols = { rows; cols; data = Array.make (rows * cols) 0. }

let bget m i j = m.data.((i * m.cols) + j)

let bset m i j x = m.data.((i * m.cols) + j) <- x

let bmat_of_mat m =
  let rows = Cv_linalg.Mat.rows m and cols = Cv_linalg.Mat.cols m in
  { rows; cols; data = Array.init (rows * cols) (fun k ->
        Cv_linalg.Mat.get m (k / cols) (k mod cols)) }

let bidentity n =
  let m = bzeros n n in
  for i = 0 to n - 1 do
    bset m i i 1.
  done;
  m

let bmap f m = { m with data = Array.map f m.data }

(* The historical naive matmul: i-k-j with a zero skip on [a]. *)
let bmatmul a b =
  let c = bzeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then begin
        let base_b = k * b.cols in
        let base_c = i * b.cols in
        for j = 0 to b.cols - 1 do
          c.data.(base_c + j) <- c.data.(base_c + j) +. (aik *. b.data.(base_b + j))
        done
      end
    done
  done;
  c

let badd a b =
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let bmatvec m v =
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + j) *. v.(j))
      done;
      !acc)

let bmatvec_add m v b =
  let r = bmatvec m v in
  for i = 0 to m.rows - 1 do
    r.(i) <- r.(i) +. b.(i)
  done;
  r

let vadd a b = Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let vnorm1 v = Array.fold_left (fun acc x -> acc +. Float.abs x) 0. v

(* A network snapshot on the baseline matrix type, converted outside the
   timed region. *)
type blayer = { w : bmat; bias : float array; act : Cv_nn.Activation.t }

let of_network net =
  Array.map
    (fun (l : Cv_nn.Layer.t) ->
      { w = bmat_of_mat l.Cv_nn.Layer.weights;
        bias = Array.copy l.Cv_nn.Layer.bias;
        act = l.Cv_nn.Layer.act })
    (Cv_nn.Network.layers net)

(* ------------------------------------------------------------------ *)
(* Box domain, historical transformer.                                 *)

let box_pre_activation (l : blayer) (b : Cv_interval.Box.t) =
  Array.init l.w.rows (fun i ->
      let lo = ref l.bias.(i) and hi = ref l.bias.(i) in
      for j = 0 to l.w.cols - 1 do
        let wij = bget l.w i j in
        let iv = Cv_interval.Box.get b j in
        if wij >= 0. then begin
          lo := !lo +. (wij *. Cv_interval.Interval.lo iv);
          hi := !hi +. (wij *. Cv_interval.Interval.hi iv)
        end
        else begin
          lo := !lo +. (wij *. Cv_interval.Interval.hi iv);
          hi := !hi +. (wij *. Cv_interval.Interval.lo iv)
        end
      done;
      Cv_interval.Interval.make !lo !hi)

let box_output layers din =
  Array.fold_left
    (fun b l -> Array.map (Cv_nn.Activation.interval l.act) (box_pre_activation l b))
    din layers

(* ------------------------------------------------------------------ *)
(* Symbolic intervals, historical per-neuron linexp records.           *)

type linexp = { coeffs : float array; const : float }

type symint = {
  s_input : Cv_interval.Box.t;
  s_lower : linexp array;
  s_upper : linexp array;
}

let concretize_linexp box e =
  let lo = ref e.const and hi = ref e.const in
  for j = 0 to Array.length e.coeffs - 1 do
    let c = e.coeffs.(j) in
    let iv = Cv_interval.Box.get box j in
    if c >= 0. then begin
      lo := !lo +. (c *. Cv_interval.Interval.lo iv);
      hi := !hi +. (c *. Cv_interval.Interval.hi iv)
    end
    else begin
      lo := !lo +. (c *. Cv_interval.Interval.hi iv);
      hi := !hi +. (c *. Cv_interval.Interval.lo iv)
    end
  done;
  Cv_interval.Interval.make !lo !hi

let sym_neuron_interval a i =
  let lo = Cv_interval.Interval.lo (concretize_linexp a.s_input a.s_lower.(i)) in
  let hi = Cv_interval.Interval.hi (concretize_linexp a.s_input a.s_upper.(i)) in
  if lo > hi then Cv_interval.Interval.point (0.5 *. (lo +. hi))
  else Cv_interval.Interval.make lo hi

let sym_of_box b =
  let n = Cv_interval.Box.dim b in
  let identity i =
    { coeffs = Array.init n (fun j -> if i = j then 1. else 0.); const = 0. }
  in
  { s_input = b; s_lower = Array.init n identity; s_upper = Array.init n identity }

let sym_affine (w : bmat) bias a =
  let rows = w.rows and cols = w.cols in
  let in_dim = Cv_interval.Box.dim a.s_input in
  let combine pick_lo i =
    let coeffs = Array.make in_dim 0. in
    let const = ref bias.(i) in
    for j = 0 to cols - 1 do
      let wij = bget w i j in
      if wij <> 0. then begin
        let src =
          if (wij > 0. && pick_lo) || (wij < 0. && not pick_lo) then a.s_lower.(j)
          else a.s_upper.(j)
        in
        for k = 0 to in_dim - 1 do
          coeffs.(k) <- coeffs.(k) +. (wij *. src.coeffs.(k))
        done;
        const := !const +. (wij *. src.const)
      end
    done;
    { coeffs; const = !const }
  in
  { s_input = a.s_input;
    s_lower = Array.init rows (combine true);
    s_upper = Array.init rows (combine false) }

let zero_exp n = { coeffs = Array.make n 0.; const = 0. }

let sym_relu a =
  let n = Array.length a.s_lower in
  let in_dim = Cv_interval.Box.dim a.s_input in
  let lower = Array.make n (zero_exp in_dim) in
  let upper = Array.make n (zero_exp in_dim) in
  for i = 0 to n - 1 do
    let lo_iv = concretize_linexp a.s_input a.s_lower.(i) in
    let up_iv = concretize_linexp a.s_input a.s_upper.(i) in
    let l = Cv_interval.Interval.lo lo_iv in
    let u = Cv_interval.Interval.hi up_iv in
    if l >= 0. then begin
      lower.(i) <- a.s_lower.(i);
      upper.(i) <- a.s_upper.(i)
    end
    else if u <= 0. then begin
      lower.(i) <- zero_exp in_dim;
      upper.(i) <- zero_exp in_dim
    end
    else begin
      let l_u = Cv_interval.Interval.lo up_iv in
      lower.(i) <- zero_exp in_dim;
      if l_u >= 0. then upper.(i) <- a.s_upper.(i)
      else begin
        let s = if u -. l_u <= 0. then 0. else u /. (u -. l_u) in
        upper.(i) <-
          { coeffs = Array.map (fun c -> s *. c) a.s_upper.(i).coeffs;
            const = s *. (a.s_upper.(i).const -. l_u) }
      end
    end
  done;
  { a with s_lower = lower; s_upper = upper }

let sym_monotone_concrete act a =
  let n = Array.length a.s_lower in
  let in_dim = Cv_interval.Box.dim a.s_input in
  let lower = Array.make n (zero_exp in_dim) in
  let upper = Array.make n (zero_exp in_dim) in
  for i = 0 to n - 1 do
    let iv = Cv_nn.Activation.interval act (sym_neuron_interval a i) in
    lower.(i) <- { coeffs = Array.make in_dim 0.; const = Cv_interval.Interval.lo iv };
    upper.(i) <- { coeffs = Array.make in_dim 0.; const = Cv_interval.Interval.hi iv }
  done;
  { a with s_lower = lower; s_upper = upper }

let sym_apply_layer l a =
  let pre = sym_affine l.w l.bias a in
  match l.act with
  | Cv_nn.Activation.Relu -> sym_relu pre
  | Cv_nn.Activation.Identity -> pre
  | act -> sym_monotone_concrete act pre

let symint_output layers din =
  let a = Array.fold_left (fun acc l -> sym_apply_layer l acc) (sym_of_box din) layers in
  Array.init (Array.length a.s_lower) (sym_neuron_interval a)

(* ------------------------------------------------------------------ *)
(* Zonotope, historical generator-row-array representation.            *)

type zono = { z_center : float array; z_gens : float array array }

let zono_of_box b =
  let n = Cv_interval.Box.dim b in
  let center =
    Array.init n (fun i -> Cv_interval.Interval.center (Cv_interval.Box.get b i))
  in
  let gens = ref [] in
  for i = n - 1 downto 0 do
    let r = Cv_interval.Interval.radius (Cv_interval.Box.get b i) in
    if r > 0. then begin
      let g = Array.make n 0. in
      g.(i) <- r;
      gens := g :: !gens
    end
  done;
  { z_center = center; z_gens = Array.of_list !gens }

let zono_deviation z i =
  Array.fold_left (fun acc g -> acc +. Float.abs g.(i)) 0. z.z_gens

let zono_to_box z =
  Array.init (Array.length z.z_center) (fun i ->
      let d = zono_deviation z i in
      Cv_interval.Interval.make (z.z_center.(i) -. d) (z.z_center.(i) +. d))

let zono_affine (w : bmat) bias z =
  { z_center = bmatvec_add w z.z_center bias;
    z_gens = Array.map (fun g -> bmatvec w g) z.z_gens }

let zono_relu z =
  let n = Array.length z.z_center in
  let box = zono_to_box z in
  let center = Array.copy z.z_center in
  let generators = Array.map Array.copy z.z_gens in
  let fresh = ref [] in
  for i = 0 to n - 1 do
    let iv = Cv_interval.Box.get box i in
    let l = Cv_interval.Interval.lo iv and u = Cv_interval.Interval.hi iv in
    if u <= 0. then begin
      center.(i) <- 0.;
      Array.iter (fun g -> g.(i) <- 0.) generators
    end
    else if l < 0. then begin
      let lambda = u /. (u -. l) in
      let mu = -.lambda *. l /. 2. in
      center.(i) <- (lambda *. center.(i)) +. mu;
      Array.iter (fun g -> g.(i) <- lambda *. g.(i)) generators;
      let g = Array.make n 0. in
      g.(i) <- mu;
      fresh := g :: !fresh
    end
  done;
  { z_center = center; z_gens = Array.append generators (Array.of_list !fresh) }

let zono_monotone_concrete act z =
  let box = zono_to_box z in
  let imgs = Array.map (Cv_nn.Activation.interval act) box in
  let n = Array.length z.z_center in
  let center = Array.init n (fun i -> Cv_interval.Interval.center imgs.(i)) in
  let gens = ref [] in
  for i = n - 1 downto 0 do
    let r = Cv_interval.Interval.radius imgs.(i) in
    if r > 0. then begin
      let g = Array.make n 0. in
      g.(i) <- r;
      gens := g :: !gens
    end
  done;
  { z_center = center; z_gens = Array.of_list !gens }

let zono_apply_layer l z =
  let pre = zono_affine l.w l.bias z in
  match l.act with
  | Cv_nn.Activation.Relu -> zono_relu pre
  | Cv_nn.Activation.Identity -> pre
  | act -> zono_monotone_concrete act pre

let _ = vnorm1 (* historical order-reduction helper, kept for parity *)

let zonotope_output layers din =
  zono_to_box
    (Array.fold_left (fun acc l -> zono_apply_layer l acc) (zono_of_box din) layers)

(* ------------------------------------------------------------------ *)
(* DeepPoly, historical dense node list with per-call sign splits.     *)

type dp_node = {
  lw : bmat;
  lb : float array;
  uw : bmat;
  ub : float array;
  bounds : Cv_interval.Box.t;
}

type dp = { d_input : Cv_interval.Box.t; d_nodes : dp_node list }

let dp_current_box a =
  match a.d_nodes with [] -> a.d_input | n :: _ -> n.bounds

let dp_of_box b = { d_input = b; d_nodes = [] }

let split_signs m =
  ( bmap (fun x -> if x > 0. then x else 0.) m,
    bmap (fun x -> if x < 0. then x else 0.) m )

let subst_upper node (a, c) =
  let pos, neg = split_signs a in
  let a' = badd (bmatmul pos node.uw) (bmatmul neg node.lw) in
  let c' = vadd c (vadd (bmatvec pos node.ub) (bmatvec neg node.lb)) in
  (a', c')

let subst_lower node (a, c) =
  let pos, neg = split_signs a in
  let a' = badd (bmatmul pos node.lw) (bmatmul neg node.uw) in
  let c' = vadd c (vadd (bmatvec pos node.lb) (bmatvec neg node.ub)) in
  (a', c')

let eval_upper box (a, c) =
  Array.init a.rows (fun i ->
      let acc = ref c.(i) in
      for j = 0 to a.cols - 1 do
        let w = bget a i j in
        let iv = Cv_interval.Box.get box j in
        acc :=
          !acc
          +.
          if w >= 0. then w *. Cv_interval.Interval.hi iv
          else w *. Cv_interval.Interval.lo iv
      done;
      !acc)

let eval_lower box (a, c) =
  Array.init a.rows (fun i ->
      let acc = ref c.(i) in
      for j = 0 to a.cols - 1 do
        let w = bget a i j in
        let iv = Cv_interval.Box.get box j in
        acc :=
          !acc
          +.
          if w >= 0. then w *. Cv_interval.Interval.lo iv
          else w *. Cv_interval.Interval.hi iv
      done;
      !acc)

let dp_concretize input nodes ~lw ~lb ~uw ~ub =
  let rec down_upper expr = function
    | [] -> expr
    | node :: rest -> down_upper (subst_upper node expr) rest
  in
  let rec down_lower expr = function
    | [] -> expr
    | node :: rest -> down_lower (subst_lower node expr) rest
  in
  let his = eval_upper input (down_upper (uw, ub) nodes) in
  let los = eval_lower input (down_lower (lw, lb) nodes) in
  Array.init (Array.length los) (fun i ->
      if los.(i) > his.(i) then
        Cv_interval.Interval.point (0.5 *. (los.(i) +. his.(i)))
      else Cv_interval.Interval.make los.(i) his.(i))

let dp_push a ~lw ~lb ~uw ~ub =
  let bounds = dp_concretize a.d_input a.d_nodes ~lw ~lb ~uw ~ub in
  { a with d_nodes = { lw; lb; uw; ub; bounds } :: a.d_nodes }

let dp_affine (w : bmat) bias a = dp_push a ~lw:w ~lb:bias ~uw:w ~ub:bias

let dp_relu a =
  let pre = dp_current_box a in
  let n = Cv_interval.Box.dim pre in
  let lw = bzeros n n and uw = bzeros n n in
  let lb = Array.make n 0. and ub = Array.make n 0. in
  for i = 0 to n - 1 do
    let iv = Cv_interval.Box.get pre i in
    let l = Cv_interval.Interval.lo iv and u = Cv_interval.Interval.hi iv in
    if l >= 0. then begin
      bset lw i i 1.;
      bset uw i i 1.
    end
    else if u <= 0. then ()
    else begin
      let s = u /. (u -. l) in
      bset uw i i s;
      ub.(i) <- -.s *. l;
      if u > -.l then bset lw i i 1.
    end
  done;
  dp_push a ~lw ~lb ~uw ~ub

let dp_monotone_concrete act a =
  let pre = dp_current_box a in
  let imgs = Array.map (Cv_nn.Activation.interval act) pre in
  let n = Array.length imgs in
  let zeros = bzeros n n in
  dp_push a ~lw:zeros
    ~lb:(Array.map Cv_interval.Interval.lo imgs)
    ~uw:zeros
    ~ub:(Array.map Cv_interval.Interval.hi imgs)

let dp_apply_layer l a =
  let a = dp_affine l.w l.bias a in
  match l.act with
  | Cv_nn.Activation.Relu -> dp_relu a
  | Cv_nn.Activation.Identity -> a
  | act -> dp_monotone_concrete act a

let deeppoly_output layers din =
  dp_current_box
    (Array.fold_left (fun acc l -> dp_apply_layer l acc) (dp_of_box din) layers)

let _ = bidentity
