(* contiver — continuous safety verification of neural networks.

   A cmdliner front-end over the library: generate the synthetic
   experiment, verify properties, persist and reuse proof artifacts, and
   run the incremental (SVuDC / SVbTV) checks.

   Typical session:

     contiver generate --out /tmp/exp
     contiver describe --model /tmp/exp/head1.json
     contiver verify --model /tmp/exp/head1.json \
         --property /tmp/exp/property.json --artifact /tmp/exp/proof.json
     contiver svudc --model /tmp/exp/head1.json \
         --artifact /tmp/exp/proof.json --new-din /tmp/exp/enlarged_din.json
     contiver svbtv --old /tmp/exp/head1.json --new /tmp/exp/head2.json \
         --artifact /tmp/exp/proof.json --new-din /tmp/exp/enlarged_din.json *)

open Cmdliner

(* User-facing failure (missing/unreadable/corrupt input files): caught
   by [run] below and rendered as a one-line error plus a nonzero exit
   code, never a backtrace. *)
exception Cli_error of string

let cli_fail fmt = Printf.ksprintf (fun s -> raise (Cli_error s)) fmt

(* Wrap a command body: its normal result is the exit code. Injected
   faults, budget expiry and malformed JSON that escape the library's
   own degradation layers are still rendered as one-line errors, never
   a backtrace. *)
let run f =
  try f () with
  | Cli_error msg ->
    prerr_endline ("contiver: error: " ^ msg);
    Cmd.Exit.some_error
  | Sys_error msg ->
    prerr_endline ("contiver: error: " ^ msg);
    Cmd.Exit.some_error
  | Cv_util.Json.Error msg ->
    prerr_endline ("contiver: error: malformed JSON: " ^ msg);
    Cmd.Exit.some_error
  | Cv_util.Deadline.Expired msg ->
    prerr_endline ("contiver: error: budget expired: " ^ msg);
    Cmd.Exit.some_error
  | Cv_util.Fault.Injected msg ->
    prerr_endline ("contiver: error: injected fault: " ^ msg);
    Cmd.Exit.some_error

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let load_json path =
  match Cv_util.Json.parse (read_file path) with
  | j -> j
  | exception Sys_error msg -> cli_fail "%s" msg
  | exception Cv_util.Json.Error msg -> cli_fail "%s: %s" path msg

let load_network path =
  match Cv_nn.Serialize.load_network_result path with
  | Ok net -> net
  | Error e -> cli_fail "%s" (Cv_nn.Serialize.load_error_message e)

let load_artifact path =
  match Cv_artifacts.Artifacts.load_result path with
  | Ok a -> a
  | Error e -> cli_fail "%s" (Cv_artifacts.Artifacts.load_error_message e)

let load_box path =
  match Cv_interval.Box.of_json_result (load_json path) with
  | Ok b -> b
  | Error msg -> cli_fail "%s: %s" path msg

let save_box path box =
  write_file path (Cv_util.Json.to_string (Cv_interval.Box.to_json box))

let load_property path =
  match Cv_verify.Property.of_json_result (load_json path) with
  | Ok p -> p
  | Error msg -> cli_fail "%s: %s" path msg

let save_property path prop =
  write_file path (Cv_util.Json.to_string (Cv_verify.Property.to_json prop))

(* ------------------------------------------------------------------ *)
(* Proof certificates                                                  *)
(* ------------------------------------------------------------------ *)

let emit_cert_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-cert" ] ~docv:"FILE"
        ~doc:
          "After the run, emit a standalone proof certificate to $(docv): a \
           self-contained document (network, claim and proof inside) that \
           $(b,contiver check) replays with outward-rounded interval \
           arithmetic only. Best-effort: a verdict outside the certifiable \
           fragment prints a warning and writes nothing.")

(* Safe-network emission ladder: the interval chain / split tree first
   (cheap, covers most proved properties), the MILP goal certificates
   when bisection alone cannot close the bound. *)
let safe_network_cert ~mode ~solver ~fingerprint net ~din ~dout =
  match Cv_cert.Emit.safe_cert ~mode ~solver ~fingerprint net ~din ~dout with
  | Some c -> Some c
  | None ->
    Cv_milp.Cert_bridge.safe_cert ~mode ~solver ~fingerprint net ~din ~dout

(* "prop3" (a Strategy attempt name) -> "Proposition 3". *)
let proposition_of_route route =
  let n = String.length route in
  if n > 4 && String.sub route 0 4 = "prop" then
    "Proposition " ^ String.sub route 4 (n - 4)
  else route

(* Wrap an incremental run's certificate in the reuse frame recording
   which decision route settled the verdict; an unwrappable frame
   degrades to the inner certificate. *)
let reuse_wrapped ~route ~dout cert =
  let slack =
    match cert.Cv_cert.Cert.proof with
    | Cv_cert.Cert.P_chain boxes -> Cv_cert.Check.chain_slack ~dout boxes
    | _ -> 0.
  in
  match
    Cv_cert.Emit.reuse_cert ~route ~proposition:(proposition_of_route route)
      ~slack cert
  with
  | Some wrapped -> Some wrapped
  | None -> Some cert

(* Persist (checksummed envelope) and mirror into the artifact cache
   under the content-addressed key fingerprint × D_in hash ×
   "cert:<mode>". *)
let write_cert ?cache ~din path cert =
  Cv_artifacts.Artifacts.save_doc ~format:Cv_cert.Cert.envelope_format path
    (Cv_cert.Cert.to_json cert);
  Option.iter
    (fun c ->
      Cv_artifacts.Cache.store c
        ~fingerprint:cert.Cv_cert.Cert.fingerprint
        ~box_hash:(Cv_artifacts.Cache.box_hash din)
        ~kind:("cert:" ^ cert.Cv_cert.Cert.mode)
        (Cv_cert.Cert.to_json cert))
    cache;
  Printf.printf "certificate (%s proof) written to %s\n"
    (Cv_cert.Cert.proof_kind cert.Cv_cert.Cert.proof)
    path

let emit_cert_to ?cache ~din path = function
  | Some cert -> write_cert ?cache ~din path cert
  | None ->
    Printf.eprintf
      "contiver: warning: no certificate emitted (verdict outside the \
       certifiable fragment)\n\
       %!"

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let setup_logs verbose =
  Cv_util.Fault.init_from_env ();
  Cv_util.Log_setup.init ~level:(if verbose then Logs.Info else Logs.Warning) ()

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let model_arg ?(names = [ "model" ]) () =
  Arg.(
    required
    & opt (some file) None
    & info names ~docv:"FILE" ~doc:"Model file (contiver JSON format).")

let artifact_arg ~mode =
  match mode with
  | `In ->
    Arg.(
      required
      & opt (some file) None
      & info [ "artifact" ] ~docv:"FILE" ~doc:"Proof-artifact file to reuse.")
  | `Out ->
    Arg.(
      required
      & opt (some string) None
      & info [ "artifact" ] ~docv:"FILE" ~doc:"Where to write proof artifacts.")

let engine_arg =
  let conv_engine s =
    match s with
    | "milp" -> Ok Cv_verify.Containment.Milp
    | "symint-split" -> Ok (Cv_verify.Containment.Symint_split 4096)
    | "box" | "symint" | "zonotope" | "deeppoly" | "star" ->
      Ok (Cv_verify.Containment.Abstract (Cv_domains.Analyzer.domain_of_string s))
    | _ -> Error (`Msg ("unknown engine: " ^ s))
  in
  let pp_engine ppf e =
    Format.pp_print_string ppf (Cv_verify.Containment.engine_name e)
  in
  Arg.(
    value
    & opt (conv (conv_engine, pp_engine)) Cv_verify.Containment.Milp
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Verification engine: $(b,milp), $(b,symint-split), or a one-shot \
           abstract domain ($(b,box), $(b,symint), $(b,zonotope), \
           $(b,deeppoly), $(b,star)).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Verification budget in seconds. On expiry the run degrades \
           gracefully to a structured UNKNOWN verdict (with the best bound \
           salvaged so far) instead of running to completion.")

let deadline_of = Option.map (fun seconds -> Cv_util.Deadline.make ~seconds)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "After the run, print the solver-effort counters and timers \
           (simplex pivots, branch-and-bound nodes, bisection splits, \
           abstract-domain calls, ...) to standard error, grouped per \
           engine.")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Record hierarchical timed spans of the run (strategy attempts, \
           escalation rungs, containment queries) and write the span tree \
           to $(docv) as JSON.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Periodically snapshot the run's search state to $(docv) \
           (atomic write, checksummed envelope), so a killed run can be \
           restarted with $(b,--resume-checkpoint).")

let checkpoint_every_arg =
  Arg.(
    value & opt float 5.
    & info [ "checkpoint-every" ] ~docv:"SECONDS"
        ~doc:
          "Minimum seconds between periodic checkpoint snapshots \
           (default 5; 0 snapshots at every safe point).")

let resume_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "resume-checkpoint" ] ~docv:"FILE"
        ~doc:
          "Restart from a checkpoint written by a previous (killed) run \
           of the same command on the same network. The file's run \
           kind, network fingerprint and property are validated before \
           resuming. Unless $(b,--checkpoint) says otherwise, the run \
           keeps checkpointing to the same file.")

(* Resolve the checkpoint flags into a cadenced sink plus the validated
   resume payload. [--resume-checkpoint] without [--checkpoint] keeps
   checkpointing to the resumed file. The scope binds the checkpoint to
   the property under verification: resuming an exact search recorded
   for a different D_in would replay completed query optima computed on
   the wrong domain, so a scope mismatch refuses to resume. *)
let setup_checkpointing ~kind ~fingerprint ~scope ~checkpoint ~every ~resume =
  let resume_payload =
    match resume with
    | None -> None
    | Some path -> (
      match
        Cv_core.Runstate.load ~path ~kind ~fingerprint ~scope:(Some scope)
      with
      | Ok payload -> Some payload
      | Error e -> cli_fail "%s" (Cv_core.Runstate.resume_error_message e))
  in
  let sink_path = match checkpoint with Some _ -> checkpoint | None -> resume in
  let sink =
    Option.map
      (fun path ->
        Cv_util.Checkpoint.create ~every (fun payload ->
            Cv_core.Runstate.save ~scope ~path ~kind ~fingerprint payload))
      sink_path
  in
  (sink, resume_payload)

(* Zero the metrics registry, optionally enable span recording, run the
   command body, then emit the requested observability outputs — also on
   error paths, so a failed run still reports where its effort went. A
   failing trace write must not mask the body's own result, so it
   degrades to a warning. *)
let with_observability ~stats ~trace_json f =
  Cv_util.Metrics.reset ();
  if trace_json <> None then Cv_util.Trace.enable ();
  let finish () =
    (match trace_json with
    | None -> ()
    | Some path -> (
      Cv_util.Trace.disable ();
      match write_file path (Cv_util.Json.to_string (Cv_util.Trace.to_json ())) with
      | () -> Printf.eprintf "trace written to %s\n%!" path
      | exception Sys_error msg ->
        Printf.eprintf "contiver: warning: trace not written: %s\n%!" msg));
    if stats then prerr_string (Cv_util.Metrics.table ())
  in
  Fun.protect ~finally:finish f

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate verbose out seed =
  run @@ fun () ->
  setup_logs verbose;
  let config = { Cv_vehicle.Pipeline.default_config with Cv_vehicle.Pipeline.seed } in
  let exp = Cv_vehicle.Pipeline.build ~config () in
  (try Unix.mkdir out 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iteri
    (fun i head ->
      Cv_nn.Serialize.save_network
        ~name:(Printf.sprintf "head%d" (i + 1))
        (Filename.concat out (Printf.sprintf "head%d.json" (i + 1)))
        head)
    exp.Cv_vehicle.Pipeline.heads;
  save_property
    (Filename.concat out "property.json")
    (Cv_vehicle.Pipeline.property exp);
  save_box (Filename.concat out "din.json") exp.Cv_vehicle.Pipeline.din;
  save_box
    (Filename.concat out "enlarged_din.json")
    exp.Cv_vehicle.Pipeline.enlarged_din;
  Printf.printf
    "wrote %d heads, property, din and enlarged_din to %s\n(train loss %.5f, %d OOD events, kappa %.4f)\n"
    (Array.length exp.Cv_vehicle.Pipeline.heads)
    out exp.Cv_vehicle.Pipeline.train_loss exp.Cv_vehicle.Pipeline.ood_events
    exp.Cv_vehicle.Pipeline.kappa;
  Cmd.Exit.ok

let generate_cmd =
  let out =
    Arg.(
      value & opt string "contiver-experiment"
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate the synthetic vehicle experiment (models + domains).")
    Term.(const generate $ verbose_arg $ out $ seed)

(* ------------------------------------------------------------------ *)
(* describe                                                            *)
(* ------------------------------------------------------------------ *)

let describe verbose model =
  run @@ fun () ->
  setup_logs verbose;
  let net = load_network model in
  print_string (Cv_nn.Describe.layer_table net);
  Printf.printf "global Lipschitz (Linf): %.4g\n"
    (Cv_lipschitz.Lipschitz.global ~norm:Cv_lipschitz.Lipschitz.Linf net);
  Cmd.Exit.ok

let describe_cmd =
  Cmd.v
    (Cmd.info "describe" ~doc:"Print a model's architecture summary.")
    Term.(const describe $ verbose_arg $ model_arg ())

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let string_of_unknown (u : Cv_verify.Containment.unknown) =
  Printf.sprintf "UNKNOWN (%s): %s%s"
    (Cv_verify.Containment.reason_name u.Cv_verify.Containment.reason)
    u.Cv_verify.Containment.message
    (match u.Cv_verify.Containment.best_bound with
    | None -> ""
    | Some b -> Printf.sprintf " [best bound %.6g]" b)

let verify verbose model property artifact_out emit_cert exact widen timeout
    stats trace_json checkpoint checkpoint_every resume =
  run @@ fun () ->
  setup_logs verbose;
  with_observability ~stats ~trace_json @@ fun () ->
  let net = load_network model in
  let prop = load_property property in
  if (checkpoint <> None || resume <> None) && not exact then
    cli_fail
      "--checkpoint/--resume-checkpoint require --exact (only the exact \
       branch-and-bound search has resumable state)";
  let checkpoint, resume =
    setup_checkpointing ~kind:Cv_core.Runstate.Verify
      ~fingerprint:(Cv_artifacts.Artifacts.fingerprint net)
      ~scope:
        (Cv_core.Runstate.property_scope ~din:prop.Cv_verify.Property.din
           ~dout:prop.Cv_verify.Property.dout ())
      ~checkpoint ~every:checkpoint_every ~resume
  in
  let deadline = deadline_of timeout in
  let original =
    if exact then
      Cv_core.Strategy.solve_original_exact ?deadline ~widen ?checkpoint
        ?resume net prop
    else Cv_core.Strategy.solve_original ?deadline net prop
  in
  let verdict = original.Cv_core.Strategy.report.Cv_verify.Verifier.verdict in
  Printf.printf "verdict: %s\n"
    (match verdict with
    | Cv_verify.Containment.Proved -> "PROVED"
    | Cv_verify.Containment.Violated v ->
      Printf.sprintf "VIOLATED (output %d, margin %.4g)"
        v.Cv_verify.Falsify.neuron v.Cv_verify.Falsify.margin
    | Cv_verify.Containment.Unknown u -> string_of_unknown u);
  Printf.printf "time: %.3fs  solver: %s\n"
    original.Cv_core.Strategy.artifact.Cv_artifacts.Artifacts.solve_seconds
    original.Cv_core.Strategy.artifact.Cv_artifacts.Artifacts.solver;
  if original.Cv_core.Strategy.proved then begin
    Cv_artifacts.Artifacts.save artifact_out original.Cv_core.Strategy.artifact;
    Printf.printf "proof artifacts written to %s\n" artifact_out
  end
  else Printf.printf "no artifact written (property not proved)\n";
  Option.iter
    (fun path ->
      let fingerprint = Cv_artifacts.Artifacts.fingerprint net in
      let solver =
        original.Cv_core.Strategy.artifact.Cv_artifacts.Artifacts.solver
      in
      let din = prop.Cv_verify.Property.din
      and dout = prop.Cv_verify.Property.dout in
      emit_cert_to ~din path
        (match verdict with
        | Cv_verify.Containment.Proved ->
          safe_network_cert ~mode:"verify" ~solver ~fingerprint net ~din ~dout
        | Cv_verify.Containment.Violated v ->
          Cv_cert.Emit.unsafe_cert ~mode:"verify" ~solver ~fingerprint net
            ~din ~dout ~x:v.Cv_verify.Falsify.input
        | Cv_verify.Containment.Unknown _ -> None))
    emit_cert;
  (* A budget expiry is a structured, expected outcome of a bounded run,
     not a failure of the tool: exit 0. Everything else unproved is 1. *)
  match verdict with
  | Cv_verify.Containment.Proved -> Cmd.Exit.ok
  | Cv_verify.Containment.Unknown
      { Cv_verify.Containment.reason = Cv_verify.Containment.Timeout; _ } ->
    Cmd.Exit.ok
  | _ -> 1

let verify_cmd =
  let property =
    Arg.(
      required
      & opt (some file) None
      & info [ "property" ] ~docv:"FILE" ~doc:"Safety property (JSON).")
  in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "Run the sound-and-complete exact solve (MILP output range) \
             instead of abstract-with-fallback.")
  in
  let widen =
    Arg.(
      value & opt float 0.02
      & info [ "widen" ] ~docv:"W"
          ~doc:"Widening slack on recorded state abstractions.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify a safety property from scratch and record proof artifacts.")
    Term.(
      const verify $ verbose_arg $ model_arg () $ property
      $ artifact_arg ~mode:`Out $ emit_cert_arg $ exact $ widen $ timeout_arg
      $ stats_arg $ trace_json_arg $ checkpoint_arg $ checkpoint_every_arg
      $ resume_arg)

(* ------------------------------------------------------------------ *)
(* svudc / svbtv                                                       *)
(* ------------------------------------------------------------------ *)

let print_report report original_seconds =
  print_endline (Cv_core.Report.to_string report);
  Printf.printf "incremental cost: %.3f%% of the original solve\n"
    (100.
    *. Cv_core.Strategy.ratio ~incremental:report.Cv_core.Report.total_wall
         ~original:original_seconds);
  match report.Cv_core.Report.verdict with
  | Cv_core.Report.Safe -> Cmd.Exit.ok
  | Cv_core.Report.Exhausted _ ->
    (* Budget expiry is a structured, expected outcome of a bounded run. *)
    Cmd.Exit.ok
  | _ -> 1

(* Incremental runs certify the re-established property: the enlarged
   (or inherited) input domain against the artifact's output box, on
   the network that was actually verified, wrapped in the reuse frame
   naming the decisive route. *)
let emit_incremental_cert ~mode ~path net ~din ~dout
    (report : Cv_core.Report.t) =
  match report.Cv_core.Report.verdict with
  | Cv_core.Report.Safe ->
    let solver =
      Option.value ~default:"strategy" report.Cv_core.Report.decisive
    in
    let fingerprint = Cv_artifacts.Artifacts.fingerprint net in
    let inner = safe_network_cert ~mode ~solver ~fingerprint net ~din ~dout in
    emit_cert_to ~din path
      (match (inner, report.Cv_core.Report.decisive) with
      | Some c, Some route -> reuse_wrapped ~route ~dout c
      | _ -> inner)
  | Cv_core.Report.Unsafe v ->
    let fingerprint = Cv_artifacts.Artifacts.fingerprint net in
    emit_cert_to ~din path
      (Cv_cert.Emit.unsafe_cert ~mode ~solver:"falsify" ~fingerprint net ~din
         ~dout ~x:v.Cv_verify.Falsify.input)
  | Cv_core.Report.Inconclusive _ | Cv_core.Report.Exhausted _ ->
    emit_cert_to ~din path None

let svudc verbose model artifact new_din emit_cert engine timeout stats
    trace_json checkpoint checkpoint_every resume =
  run @@ fun () ->
  setup_logs verbose;
  with_observability ~stats ~trace_json @@ fun () ->
  let net = load_network model in
  let artifact = load_artifact artifact in
  let new_din = load_box new_din in
  let checkpoint, resume =
    setup_checkpointing ~kind:Cv_core.Runstate.Svudc
      ~fingerprint:(Cv_artifacts.Artifacts.fingerprint net)
      ~scope:
        (Cv_core.Runstate.property_scope ~din:new_din
           ~dout:
             artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.dout
           ())
      ~checkpoint ~every:checkpoint_every ~resume
  in
  let p = Cv_core.Problem.svudc ~net ~artifact ~new_din in
  let config = { Cv_core.Strategy.default_config with Cv_core.Strategy.engine } in
  let report =
    Cv_core.Strategy.solve_svudc ?deadline:(deadline_of timeout) ~config
      ?checkpoint ?resume p
  in
  Option.iter
    (fun path ->
      emit_incremental_cert ~mode:"svudc" ~path net ~din:new_din
        ~dout:artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.dout
        report)
    emit_cert;
  print_report report artifact.Cv_artifacts.Artifacts.solve_seconds

let svudc_cmd =
  let new_din =
    Arg.(
      required
      & opt (some file) None
      & info [ "new-din" ] ~docv:"FILE" ~doc:"Enlarged input domain (JSON box).")
  in
  Cmd.v
    (Cmd.info "svudc"
       ~doc:
         "Safety Verification under Domain Change: re-establish a proved \
          property on an enlarged input domain by reusing proof artifacts.")
    Term.(
      const svudc $ verbose_arg $ model_arg () $ artifact_arg ~mode:`In
      $ new_din $ emit_cert_arg $ engine_arg $ timeout_arg $ stats_arg
      $ trace_json_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg)

let svbtv verbose old_model new_model artifact new_din emit_cert engine slack
    timeout stats trace_json checkpoint checkpoint_every resume =
  run @@ fun () ->
  setup_logs verbose;
  with_observability ~stats ~trace_json @@ fun () ->
  let old_net = load_network old_model in
  let new_net = load_network new_model in
  let artifact = load_artifact artifact in
  let new_din =
    match new_din with
    | Some path -> load_box path
    | None -> artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.din
  in
  (* The checkpoint is bound to the network under verification — the
     fine-tuned successor — and, via the scope, to the reference
     network the artifact speaks about. *)
  let checkpoint, resume =
    setup_checkpointing ~kind:Cv_core.Runstate.Svbtv
      ~fingerprint:(Cv_artifacts.Artifacts.fingerprint new_net)
      ~scope:
        (Cv_core.Runstate.property_scope
           ~old_fingerprint:(Cv_artifacts.Artifacts.fingerprint old_net)
           ~din:new_din
           ~dout:
             artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.dout
           ())
      ~checkpoint ~every:checkpoint_every ~resume
  in
  let p = Cv_core.Problem.svbtv ~old_net ~new_net ~artifact ~new_din in
  Printf.printf "parameter drift (Linf): %.5g\n" (Cv_core.Problem.drift p);
  let config =
    { Cv_core.Strategy.default_config with
      Cv_core.Strategy.engine;
      interval_slack = slack }
  in
  let report =
    Cv_core.Strategy.solve_svbtv ?deadline:(deadline_of timeout) ~config
      ?checkpoint ?resume p
  in
  Option.iter
    (fun path ->
      emit_incremental_cert ~mode:"svbtv" ~path new_net ~din:new_din
        ~dout:artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.dout
        report)
    emit_cert;
  print_report report artifact.Cv_artifacts.Artifacts.solve_seconds

let svbtv_cmd =
  let old_model = model_arg ~names:[ "old" ] () in
  let new_model = model_arg ~names:[ "new" ] () in
  let new_din =
    Arg.(
      value
      & opt (some file) None
      & info [ "new-din" ] ~docv:"FILE"
          ~doc:"Enlarged input domain (defaults to the artifact's D_in).")
  in
  let slack =
    Arg.(
      value
      & opt (some float) None
      & info [ "interval-slack" ] ~docv:"S"
          ~doc:"Also try weight-interval Prop 6 reuse with this slack.")
  in
  Cmd.v
    (Cmd.info "svbtv"
       ~doc:
         "Safety Verification between Two Versions: transfer a proof from a \
          network to its fine-tuned successor.")
    Term.(
      const svbtv $ verbose_arg $ old_model $ new_model
      $ artifact_arg ~mode:`In $ new_din $ emit_cert_arg $ engine_arg $ slack
      $ timeout_arg $ stats_arg $ trace_json_arg $ checkpoint_arg
      $ checkpoint_every_arg $ resume_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

(* The Fig. 2 toy network: small enough that every chaos round is
   instant, rich enough (two ReLU layers, exact max ≈ 6.2 on [-1,1]²)
   that both a provable and a falsifiable property exist. *)
let chaos_net () =
  Cv_nn.Network.of_list
    [ Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 1.; -2. |]; [| -2.; 1. |]; [| 1.; -1. |] ])
        [| 0.; 0.; 0. |] Cv_nn.Activation.Relu;
      Cv_nn.Layer.make
        (Cv_linalg.Mat.of_rows [ [| 2.; 2.; -1. |] ])
        [| 0. |] Cv_nn.Activation.Relu ]

(* Collapse a verdict (or an escaped exception) into the three-way
   outcome the soundness invariant speaks about. *)
type chaos_outcome = C_safe | C_unsafe | C_degraded of string

let chaos_outcome_name = function
  | C_safe -> "safe"
  | C_unsafe -> "unsafe"
  | C_degraded why -> "degraded (" ^ why ^ ")"

let chaos_run_scenario net ~input_box ~target =
  match
    Cv_verify.Containment.check Cv_verify.Containment.Milp net ~input_box
      ~target
  with
  | Cv_verify.Containment.Proved -> C_safe
  | Cv_verify.Containment.Violated _ -> C_unsafe
  | Cv_verify.Containment.Unknown u ->
    C_degraded (Cv_verify.Containment.reason_name u.Cv_verify.Containment.reason)
  | exception exn -> C_degraded ("escaped: " ^ Printexc.to_string exn)

(* A verdict flip is Safe↔Unsafe in either direction; degradation to
   Unknown (or a crash) is an acceptable loss of progress, never of
   soundness. *)
let chaos_is_flip ~baseline ~faulty =
  match (baseline, faulty) with
  | C_safe, C_unsafe | C_unsafe, C_safe -> true
  | _ -> false

let chaos verbose seed rounds =
  run @@ fun () ->
  setup_logs verbose;
  (* The baseline must be fault-free even under CONTIVER_FAULTS. *)
  Cv_util.Fault.reset ();
  let net = chaos_net () in
  let input_box = Cv_interval.Box.uniform 2 ~lo:(-1.) ~hi:1. in
  let scenarios =
    [ ("provable", Cv_interval.Box.of_bounds [| -1. |] [| 13. |]);
      ("falsifiable", Cv_interval.Box.of_bounds [| -1. |] [| 5. |]) ]
  in
  let baseline =
    List.map
      (fun (name, target) -> (name, chaos_run_scenario net ~input_box ~target))
      scenarios
  in
  List.iter
    (fun (name, outcome) ->
      Printf.printf "baseline %-11s -> %s\n" name (chaos_outcome_name outcome))
    baseline;
  (match List.assoc "provable" baseline with
  | C_safe -> ()
  | o ->
    cli_fail "fault-free baseline did not prove the provable scenario (%s)"
      (chaos_outcome_name o));
  (match List.assoc "falsifiable" baseline with
  | C_unsafe -> ()
  | o ->
    cli_fail "fault-free baseline did not falsify the falsifiable scenario (%s)"
      (chaos_outcome_name o));
  (* A live checkpoint sink, so kill-mid-checkpoint and
     truncate-artifact have a write path to strike. *)
  let ck_path = Filename.temp_file "contiver_chaos" ".ck.json" in
  let fingerprint = Cv_artifacts.Artifacts.fingerprint net in
  let ck_save round =
    Cv_core.Runstate.save ~path:ck_path ~kind:Cv_core.Runstate.Verify
      ~fingerprint
      (Cv_util.Json.Obj [ ("round", Cv_util.Json.Num (float_of_int round)) ])
  in
  ck_save 0;
  let campaign =
    Cv_util.Fault.plan ~seed ~rounds ~points:Cv_util.Fault.all_points
  in
  let flips = ref 0 and degradations = ref 0 in
  List.iteri
    (fun i faults ->
      let round = i + 1 in
      let armed =
        String.concat ", "
          (List.map
             (fun (p, m) ->
               Printf.sprintf "%s:%s" (Cv_util.Fault.point_name p)
                 (Cv_util.Fault.mode_name m))
             faults)
      in
      Printf.printf "round %2d  faults: %s\n" round armed;
      List.iter (fun (p, m) -> Cv_util.Fault.enable ~mode:m p) faults;
      List.iter
        (fun (name, target) ->
          let outcome = chaos_run_scenario net ~input_box ~target in
          let base = List.assoc name baseline in
          let flip = chaos_is_flip ~baseline:base ~faulty:outcome in
          if flip then incr flips;
          (match outcome with C_degraded _ -> incr degradations | _ -> ());
          Printf.printf "          %-11s -> %s%s\n" name
            (chaos_outcome_name outcome)
            (if flip then "  ** VERDICT FLIP **" else ""))
        scenarios;
      (* Exercise the checkpoint write path under the same faults. A
         kill mid-write must leave the previous checkpoint intact; any
         other damage must be detected at load, never silently
         resumed. *)
      (match ck_save round with
      | () -> ()
      | exception Cv_util.Fault.Injected _ -> (
        match
          Cv_core.Runstate.load ~path:ck_path ~kind:Cv_core.Runstate.Verify
            ~fingerprint ~scope:None
        with
        | Ok _ -> Printf.printf "          checkpoint   -> previous intact\n"
        | Error e ->
          incr flips;
          Printf.printf
            "          checkpoint   -> ** LOST AFTER KILL ** (%s)\n"
            (Cv_core.Runstate.resume_error_message e)));
      Cv_util.Fault.reset ();
      (match
         Cv_core.Runstate.load ~path:ck_path ~kind:Cv_core.Runstate.Verify
           ~fingerprint ~scope:None
       with
      | Ok _ -> ()
      | Error _ ->
        (* Detected (checksum-caught) damage from a truncation fault:
           a degradation, not a soundness failure. Reseed for the next
           round. *)
        incr degradations;
        Printf.printf "          checkpoint   -> corrupted but detected\n");
      ck_save 0)
    campaign;
  (try Sys.remove ck_path with Sys_error _ -> ());
  Printf.printf "chaos: %d rounds, %d degradations, %d verdict flips\n" rounds
    !degradations !flips;
  if !flips = 0 then Cmd.Exit.ok else 1

let chaos_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let rounds =
    Arg.(
      value & opt int 8
      & info [ "rounds" ] ~docv:"K" ~doc:"Number of fault rounds to run.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault-injection campaign against the verifier and \
          assert soundness: under injected solver crashes, worker deaths, \
          allocation failures and killed checkpoint writes, verdicts may \
          degrade to UNKNOWN but must never flip between safe and unsafe. \
          Exits nonzero on any flip.")
    Term.(const chaos $ verbose_arg $ seed $ rounds)

(* ------------------------------------------------------------------ *)
(* range                                                               *)
(* ------------------------------------------------------------------ *)

let range verbose model din domains =
  run @@ fun () ->
  setup_logs verbose;
  let net = load_network model in
  let din = load_box din in
  let r, dt =
    Cv_util.Timer.time (fun () ->
        Cv_verify.Range.exact_range ~domains net ~din)
  in
  Printf.printf "exact output range: %s\n"
    (Cv_interval.Box.to_string r.Cv_verify.Range.range);
  Printf.printf "MILP: %d vars, %d binaries; %.3fs\n" r.Cv_verify.Range.milp_vars
    r.Cv_verify.Range.milp_binaries dt;
  Cmd.Exit.ok

let range_cmd =
  let din =
    Arg.(
      required
      & opt (some file) None
      & info [ "din" ] ~docv:"FILE" ~doc:"Input domain (JSON box).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "milp-domains" ] ~docv:"N"
          ~doc:
            "Run branch-and-bound dives on $(docv) parallel domains \
             (deterministic verdicts; 1 = sequential).")
  in
  Cmd.v
    (Cmd.info "range"
       ~doc:"Compute the exact output range of a model over an input box.")
    Term.(const range $ verbose_arg $ model_arg () $ din $ domains)

(* ------------------------------------------------------------------ *)
(* diff                                                                *)
(* ------------------------------------------------------------------ *)

let diff verbose old_model new_model din =
  run @@ fun () ->
  setup_logs verbose;
  let old_net = load_network old_model in
  let new_net = load_network new_model in
  let box = load_box din in
  Printf.printf "parameter drift (Linf): %.5g\n"
    (Cv_nn.Network.param_dist_inf old_net new_net);
  let delta, dt =
    Cv_util.Timer.time (fun () ->
        Cv_diffverify.Diffverify.output_delta ~old_net ~new_net box)
  in
  Printf.printf "differential output bound (f' - f) over the box: %s (%.4fs)\n"
    (Cv_interval.Box.to_string delta) dt;
  Printf.printf "max |f' - f| <= %.5g\n"
    (Cv_diffverify.Diffverify.max_output_delta ~old_net ~new_net box);
  Cmd.Exit.ok

let diff_cmd =
  let old_model = model_arg ~names:[ "old" ] () in
  let new_model = model_arg ~names:[ "new" ] () in
  let din =
    Arg.(
      required
      & opt (some file) None
      & info [ "din" ] ~docv:"FILE" ~doc:"Input domain (JSON box).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Bound the output difference between two model versions over an \
          input box (differential interval analysis).")
    Term.(const diff $ verbose_arg $ old_model $ new_model $ din)

(* ------------------------------------------------------------------ *)
(* suspects                                                            *)
(* ------------------------------------------------------------------ *)

let suspects verbose model property =
  run @@ fun () ->
  setup_logs verbose;
  let net = load_network model in
  let prop = load_property property in
  let result, dt =
    Cv_util.Timer.time (fun () ->
        Cv_verify.Backward.suspect_regions net ~din:prop.Cv_verify.Property.din
          ~dout:prop.Cv_verify.Property.dout)
  in
  List.iter (fun s -> Format.printf "%a@." Cv_verify.Backward.pp_suspect s) result;
  Printf.printf "%s (%.3fs)\n"
    (if Cv_verify.Backward.all_safe result then
       "all output bounds proved by the LP relaxation"
     else "suspect regions remain — consider split-verifying or collecting data there")
    dt;
  Cmd.Exit.ok

let suspects_cmd =
  let property =
    Arg.(
      required
      & opt (some file) None
      & info [ "property" ] ~docv:"FILE" ~doc:"Safety property (JSON).")
  in
  Cmd.v
    (Cmd.info "suspects"
       ~doc:
         "Backward analysis: over-approximate the input regions that could \
          violate the property (LP relaxation).")
    Term.(const suspects $ verbose_arg $ model_arg () $ property)

(* ------------------------------------------------------------------ *)
(* nnet import/export                                                  *)
(* ------------------------------------------------------------------ *)

let import_nnet verbose nnet out =
  run @@ fun () ->
  setup_logs verbose;
  let doc = Cv_nn.Nnet.load nnet in
  Cv_nn.Serialize.save_network ~name:(Filename.basename nnet) out
    doc.Cv_nn.Nnet.network;
  let box_path = Filename.remove_extension out ^ ".din.json" in
  save_box box_path doc.Cv_nn.Nnet.input_box;
  Printf.printf "imported %s -> %s (input box: %s)\n" nnet out box_path;
  print_string (Cv_nn.Describe.layer_table doc.Cv_nn.Nnet.network);
  Cmd.Exit.ok

let import_nnet_cmd =
  let nnet =
    Arg.(
      required
      & opt (some file) None
      & info [ "nnet" ] ~docv:"FILE" ~doc:".nnet file to import.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Output model (contiver JSON).")
  in
  Cmd.v
    (Cmd.info "import-nnet"
       ~doc:
         "Import a network in the community .nnet format (ACAS-Xu style) and \
          write the contiver model plus its declared input box.")
    Term.(const import_nnet $ verbose_arg $ nnet $ out)

let export_nnet verbose model din out =
  run @@ fun () ->
  setup_logs verbose;
  let net = load_network model in
  let input_box = Option.map load_box din in
  let doc = Cv_nn.Nnet.of_network ?input_box net in
  Cv_nn.Nnet.save out doc;
  Printf.printf "exported %s -> %s\n" model out;
  Cmd.Exit.ok

let export_nnet_cmd =
  let din =
    Arg.(
      value
      & opt (some file) None
      & info [ "din" ] ~docv:"FILE"
          ~doc:"Input box to record in the header (default [0,1]^d).")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Output .nnet file.")
  in
  Cmd.v
    (Cmd.info "export-nnet"
       ~doc:"Export a contiver model to the community .nnet format.")
    Term.(const export_nnet $ verbose_arg $ model_arg () $ din $ out)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate verbose steps shifted seed =
  run @@ fun () ->
  setup_logs verbose;
  let exp = Cv_vehicle.Pipeline.build () in
  let track = exp.Cv_vehicle.Pipeline.track in
  let perception = exp.Cv_vehicle.Pipeline.perception in
  let monitor = Cv_monitor.Monitor.of_box exp.Cv_vehicle.Pipeline.din in
  let rng = Cv_util.Rng.create seed in
  let conditions =
    if shifted then Cv_vehicle.Camera.shifted else Cv_vehicle.Camera.nominal
  in
  let state = Cv_vehicle.Controller.init track ~s:0. in
  let final, trace =
    Cv_vehicle.Controller.drive ~conditions ~rng ~track ~perception ~monitor
      ~steps state
  in
  let poses =
    List.filteri (fun i _ -> i mod (max 1 (steps / 15)) = 0) trace
    |> List.map (fun t -> t.Cv_vehicle.Controller.t_pose)
  in
  print_string (Cv_vehicle.Track.render track poses);
  Printf.printf
    "%d steps under %s conditions: %d off-track, %d OOD events (kappa %.4f)\n"
    steps
    (if shifted then "shifted" else "nominal")
    final.Cv_vehicle.Controller.off_track
    (Cv_monitor.Monitor.event_count monitor)
    (Cv_monitor.Monitor.kappa monitor);
  Cmd.Exit.ok

let simulate_cmd =
  let steps =
    Arg.(value & opt int 200 & info [ "steps" ] ~docv:"N" ~doc:"Simulation steps.")
  in
  let shifted =
    Arg.(
      value & flag
      & info [ "shifted" ]
          ~doc:"Drive under shifted (OOD-provoking) camera conditions.")
  in
  let seed =
    Arg.(value & opt int 123 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Closed-loop lane following with runtime monitoring on the synthetic \
          track.")
    Term.(const simulate $ verbose_arg $ steps $ shifted $ seed)

(* ------------------------------------------------------------------ *)
(* batch                                                               *)
(* ------------------------------------------------------------------ *)

(* One manifest entry. Files are loaded here (missing/corrupt input
   files are manifest authoring errors and abort the batch up front);
   semantic validation — artifact/network fingerprints, domain
   containment, shape agreement — happens inside the job, where a bad
   entry degrades to one crashed job instead of poisoning the run. *)
let parse_batch_job ~resolve index j =
  let str key = Cv_util.Json.to_str (Cv_util.Json.member key j) in
  let opt_str key =
    match Cv_util.Json.member_opt key j with
    | None | Some Cv_util.Json.Null -> None
    | Some v -> Some (Cv_util.Json.to_str v)
  in
  let id =
    match opt_str "id" with
    | Some id -> id
    | None -> cli_fail "batch manifest: job %d has no \"id\"" index
  in
  let timeout =
    match Cv_util.Json.member_opt "timeout" j with
    | None | Some Cv_util.Json.Null -> None
    | Some v -> Some (Cv_util.Json.to_float v)
  in
  let mode = Option.value ~default:"verify" (opt_str "mode") in
  let spec =
    match mode with
    | "verify" | "verify-exact" ->
      let net = load_network (resolve (str "model")) in
      let prop = load_property (resolve (str "property")) in
      let exact =
        String.equal mode "verify-exact"
        ||
        match Cv_util.Json.member_opt "exact" j with
        | Some v -> Cv_util.Json.to_bool v
        | None -> false
      in
      let artifact_out = Option.map resolve (opt_str "artifact_out") in
      Cv_core.Batch.Verify { net; prop; exact; artifact_out }
    | "svudc" ->
      Cv_core.Batch.Svudc
        { net = load_network (resolve (str "model"));
          artifact = load_artifact (resolve (str "artifact"));
          new_din = load_box (resolve (str "new_din")) }
    | "svbtv" ->
      let artifact = load_artifact (resolve (str "artifact")) in
      let new_din =
        match opt_str "new_din" with
        | Some path -> load_box (resolve path)
        | None ->
          artifact.Cv_artifacts.Artifacts.property.Cv_verify.Property.din
      in
      Cv_core.Batch.Svbtv
        { old_net = load_network (resolve (str "old"));
          new_net = load_network (resolve (str "new"));
          artifact;
          new_din }
    | m -> cli_fail "batch manifest: job %s: unknown mode %S" id m
  in
  { Cv_core.Batch.id; spec; timeout }

let load_manifest path =
  let dir = Filename.dirname path in
  let resolve p = if Filename.is_relative p then Filename.concat dir p else p in
  match Cv_util.Json.to_list (Cv_util.Json.member "jobs" (load_json path)) with
  | [] -> cli_fail "batch manifest: no jobs"
  | jobs -> List.mapi (parse_batch_job ~resolve) jobs
  | exception Cv_util.Json.Error msg -> cli_fail "%s: %s" path msg

let batch verbose manifest jobs timeout engine no_cache cache_dir
    cache_capacity checkpoint_dir checkpoint_every report_out emit_certs stats
    trace_json =
  run @@ fun () ->
  setup_logs verbose;
  with_observability ~stats ~trace_json @@ fun () ->
  let manifest_jobs = load_manifest manifest in
  let cache =
    if no_cache then None
    else Some (Cv_artifacts.Cache.create ~capacity:cache_capacity ?dir:cache_dir ())
  in
  let config =
    { Cv_core.Batch.jobs;
      job_timeout = timeout;
      strategy =
        { Cv_core.Strategy.default_config with Cv_core.Strategy.engine };
      cache;
      checkpoint_dir;
      checkpoint_every }
  in
  let t = Cv_core.Batch.run ~config manifest_jobs in
  List.iter
    (fun (r : Cv_core.Batch.job_result) ->
      Printf.printf "%-16s %-12s %-12s %-20s %8.3fs%s\n" r.Cv_core.Batch.job_id
        r.Cv_core.Batch.mode
        (Cv_core.Batch.verdict_name r.Cv_core.Batch.verdict)
        (Option.value ~default:"-" r.Cv_core.Batch.decisive)
        r.Cv_core.Batch.seconds
        (if r.Cv_core.Batch.resumed then "  (resumed)" else ""))
    t.Cv_core.Batch.results;
  let count v =
    List.length
      (List.filter
         (fun (r : Cv_core.Batch.job_result) -> r.Cv_core.Batch.verdict = v)
         t.Cv_core.Batch.results)
  in
  Printf.printf
    "batch: %d jobs  %d safe  %d unsafe  %d inconclusive  %d exhausted  %d crashed  (wall %.3fs)\n"
    (List.length t.Cv_core.Batch.results)
    (count Cv_core.Batch.Safe) (count Cv_core.Batch.Unsafe)
    (count Cv_core.Batch.Inconclusive)
    (count Cv_core.Batch.Exhausted)
    (count Cv_core.Batch.Crashed) t.Cv_core.Batch.wall_seconds;
  (match t.Cv_core.Batch.cache_stats with
  | None -> ()
  | Some s ->
    Printf.printf "cache: %d hits  %d misses  %d evictions\n"
      s.Cv_artifacts.Cache.hits s.Cv_artifacts.Cache.misses
      s.Cv_artifacts.Cache.evictions);
  (match emit_certs with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    List.iter
      (fun (r : Cv_core.Batch.job_result) ->
        if r.Cv_core.Batch.verdict = Cv_core.Batch.Safe then
          List.find_opt
            (fun j -> String.equal j.Cv_core.Batch.id r.Cv_core.Batch.job_id)
            manifest_jobs
          |> Option.iter (fun job ->
                 let mode = "batch:" ^ r.Cv_core.Batch.job_id in
                 let path =
                   Filename.concat dir (r.Cv_core.Batch.job_id ^ ".cert.json")
                 in
                 let emit net ~din ~dout ~route =
                   let fingerprint = Cv_artifacts.Artifacts.fingerprint net in
                   let solver = Option.value ~default:"strategy" route in
                   let inner =
                     safe_network_cert ~mode ~solver ~fingerprint net ~din
                       ~dout
                   in
                   emit_cert_to ?cache ~din path
                     (match (inner, route) with
                     | Some c, Some route -> reuse_wrapped ~route ~dout c
                     | _ -> inner)
                 in
                 match job.Cv_core.Batch.spec with
                 | Cv_core.Batch.Verify { net; prop; _ } ->
                   emit net ~din:prop.Cv_verify.Property.din
                     ~dout:prop.Cv_verify.Property.dout ~route:None
                 | Cv_core.Batch.Svudc { net; artifact; new_din } ->
                   emit net ~din:new_din
                     ~dout:
                       artifact.Cv_artifacts.Artifacts.property
                         .Cv_verify.Property.dout
                     ~route:r.Cv_core.Batch.decisive
                 | Cv_core.Batch.Svbtv { new_net; artifact; new_din; _ } ->
                   emit new_net ~din:new_din
                     ~dout:
                       artifact.Cv_artifacts.Artifacts.property
                         .Cv_verify.Property.dout
                     ~route:r.Cv_core.Batch.decisive))
      t.Cv_core.Batch.results);
  (match report_out with
  | None -> ()
  | Some path ->
    write_file path
      (Cv_util.Json.to_string (Cv_core.Batch.report_to_json t));
    Printf.printf "batch report written to %s\n" path);
  (* Mirror the single-shot commands' exit discipline: proved and
     budget-expired runs are expected outcomes of a bounded batch; an
     unsafe, inconclusive or crashed job makes the batch exit
     nonzero. *)
  if
    List.for_all
      (fun (r : Cv_core.Batch.job_result) ->
        match r.Cv_core.Batch.verdict with
        | Cv_core.Batch.Safe | Cv_core.Batch.Exhausted -> true
        | _ -> false)
      t.Cv_core.Batch.results
  then Cmd.Exit.ok
  else 1

let batch_cmd =
  let manifest =
    Arg.(
      required
      & opt (some file) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Batch manifest: a JSON object with a $(b,jobs) array. Each job \
             has an $(b,id), a $(b,mode) ($(b,verify), $(b,verify-exact), \
             $(b,svudc), $(b,svbtv); default $(b,verify)), the mode's input \
             files ($(b,model)/$(b,property), or \
             $(b,model)/$(b,artifact)/$(b,new_din), or \
             $(b,old)/$(b,new)/$(b,artifact)), and optionally a per-job \
             $(b,timeout) and an $(b,artifact_out) path. Relative paths are \
             resolved against the manifest's directory.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains. Admission is fair FIFO in manifest order; \
             verdicts are independent of $(docv).")
  in
  let job_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Default per-job budget, started when the job is admitted (a \
             job's own $(b,timeout) field takes precedence). On expiry the \
             job degrades to a structured exhausted verdict.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the proof-artifact cache (every job builds cold).")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Back the artifact cache with durable entries in $(docv) \
             (created if missing), so later batches reuse this one's \
             artifacts.")
  in
  let cache_capacity =
    Arg.(
      value & opt int 256
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"In-memory cache entries before LRU eviction (default 256).")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Per-job checkpointing: search state snapshots to \
             $(docv)/<id>.ck.json and completed results to \
             $(docv)/<id>.done.json. Re-running the same manifest replays \
             completed jobs and resumes interrupted ones.")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write the consolidated JSON batch report to $(docv).")
  in
  let emit_certs =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-certs" ] ~docv:"DIR"
          ~doc:
            "Emit a standalone proof certificate ($(docv)/<id>.cert.json, \
             replayable with $(b,contiver check)) for every job that \
             verified safe. Best-effort per job: an uncertifiable proof \
             prints a warning and skips that job.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a manifest of verification queries on a bounded worker pool, \
          reusing proof artifacts (state abstractions, Lipschitz constants, \
          network abstractions) across jobs through a content-addressed \
          cache.")
    Term.(
      const batch $ verbose_arg $ manifest $ jobs $ job_timeout $ engine_arg
      $ no_cache $ cache_dir $ cache_capacity $ checkpoint_dir
      $ checkpoint_every_arg $ report_out $ emit_certs $ stats_arg
      $ trace_json_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cert verbose file max_split_nodes =
  run @@ fun () ->
  setup_logs verbose;
  (* Accept both the checksummed envelope `--emit-cert` writes and a
     bare certificate document (e.g. a test fixture). *)
  let payload =
    match Cv_util.Json.member_opt "payload" (load_json file) with
    | None -> load_json file
    | Some _ -> (
      match
        Cv_artifacts.Artifacts.load_doc_result
          ~format:Cv_cert.Cert.envelope_format file
      with
      | Ok p -> p
      | Error e -> cli_fail "%s" (Cv_artifacts.Artifacts.load_error_message e))
  in
  match Cv_cert.Cert.of_json_result payload with
  | Error msg -> cli_fail "%s: not a certificate: %s" file msg
  | Ok cert -> (
    Printf.printf "certificate: mode %s, %s proof (solver %s)\n"
      cert.Cv_cert.Cert.mode
      (Cv_cert.Cert.proof_kind cert.Cv_cert.Cert.proof)
      cert.Cv_cert.Cert.solver;
    match Cv_cert.Check.check ~max_split_nodes cert with
    | Cv_cert.Check.Valid ->
      print_endline "VALID";
      Cmd.Exit.ok
    | Cv_cert.Check.Invalid reason ->
      Printf.printf "INVALID: %s\n" reason;
      1)

let check_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CERT" ~doc:"Certificate file to replay.")
  in
  let max_split_nodes =
    Arg.(
      value & opt int 200_000
      & info [ "max-split-nodes" ] ~docv:"N"
          ~doc:
            "Largest bisection / branch tree the checker walks before \
             rejecting the certificate as oversized (default 200000).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Replay a proof certificate with the independent trusted checker: \
          outward-rounded interval arithmetic only, no solver code. Exits 0 \
          on VALID, nonzero on INVALID or malformed input.")
    Term.(const check_cert $ verbose_arg $ file $ max_split_nodes)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

(* The continuous-verification daemon: monitored observations stream in
   (NDJSON on stdin, or the simulated vehicle with --drive), OOD events
   debounce into SVuDC rounds, a watched network file fingerprint change
   triggers SVbTV. Status records (contiver-serve-status-v1) go to
   stdout one JSON object per line; human-readable logs go to stderr. *)
let serve verbose model artifact_path artifact_out drive drive_steps drive_seed
    drive_burst drive_ramp max_rounds margin trigger_events trigger_kappa quiet
    queue_capacity engine widen timeout checkpoint_dir checkpoint_every resume
    status_every no_cache cache_dir cache_capacity watch no_watch stats
    trace_json =
  run @@ fun () ->
  setup_logs verbose;
  with_observability ~stats ~trace_json @@ fun () ->
  let stop_requested = Atomic.make false in
  List.iter
    (fun signal ->
      Sys.set_signal signal
        (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true)))
    [ Sys.sigterm; Sys.sigint ];
  let cache =
    if no_cache then None
    else
      Some (Cv_artifacts.Cache.create ~capacity:cache_capacity ?dir:cache_dir ())
  in
  let strategy =
    { Cv_core.Strategy.default_config with Cv_core.Strategy.engine }
  in
  let net, artifact, stream, watch_path =
    if drive then begin
      let exp = Cv_vehicle.Pipeline.build () in
      let head = exp.Cv_vehicle.Pipeline.heads.(0) in
      let prop = Cv_vehicle.Pipeline.property exp in
      let original = Cv_core.Strategy.solve_original ~config:strategy head prop in
      if not original.Cv_core.Strategy.proved then
        cli_fail "serve --drive: could not certify the original property";
      let stream =
        Cv_vehicle.Stream.create ~ramp:drive_ramp
          ~rng:(Cv_util.Rng.create drive_seed)
          ~track:exp.Cv_vehicle.Pipeline.track
          ~perception:exp.Cv_vehicle.Pipeline.perception ~steps:drive_steps ()
      in
      (head, original.Cv_core.Strategy.artifact, Some stream, watch)
    end
    else begin
      let model =
        match model with
        | Some m -> m
        | None -> cli_fail "serve: --model is required unless --drive is given"
      in
      let artifact_path =
        match artifact_path with
        | Some a -> a
        | None -> cli_fail "serve: --artifact is required unless --drive is given"
      in
      let net = load_network model in
      let artifact = load_artifact artifact_path in
      if not (Cv_artifacts.Artifacts.matches artifact net) then
        cli_fail "serve: artifact %s was not produced for network %s"
          artifact_path model;
      let watch_path =
        if no_watch then None
        else Some (Option.value watch ~default:model)
      in
      (net, artifact, None, watch_path)
    end
  in
  let fingerprint = Cv_artifacts.Artifacts.fingerprint net in
  let restored =
    if not resume then None
    else
      match checkpoint_dir with
      | None -> cli_fail "serve: --resume-checkpoint needs --checkpoint-dir"
      | Some dir -> (
        match Cv_serve.Serve.load_state ~dir ~fingerprint with
        | Ok state -> state
        | Error e -> cli_fail "%s" (Cv_core.Runstate.resume_error_message e))
  in
  let source =
    match stream with
    | Some stream ->
      (* Replay the frames a previous run already consumed, so the
         resumed daemon continues at the exact frame it last saw. *)
      (match restored with
      | Some state -> Cv_vehicle.Stream.skip stream state.Cv_serve.Serve.p_consumed
      | None -> ());
      Cv_serve.Source.of_stream ~burst:drive_burst stream
    | None -> Cv_serve.Source.stdin_ndjson ()
  in
  let config =
    { Cv_serve.Serve.margin;
      trigger_events;
      trigger_kappa =
        (match trigger_kappa with None -> infinity | Some k -> k);
      quiet_events = quiet;
      queue_capacity;
      max_rounds;
      widen;
      strategy;
      round_timeout = timeout;
      checkpoint_dir;
      checkpoint_every;
      resume = restored;
      cache;
      status_every;
      watch = watch_path;
      artifact_out;
      status =
        (fun j ->
          print_endline (Cv_util.Json.to_string j);
          flush stdout);
      on_round =
        (fun r ->
          Printf.eprintf "round %04d %s: %s%s%s  (%.3fs, %d events, kappa %.4f)\n%!"
            r.Cv_serve.Serve.number
            (Cv_serve.Serve.round_kind_name r.Cv_serve.Serve.kind)
            (Cv_core.Batch.verdict_name r.Cv_serve.Serve.verdict)
            (if r.Cv_serve.Serve.committed then ", committed" else "")
            (if r.Cv_serve.Serve.resumed then " (resumed)" else "")
            r.Cv_serve.Serve.seconds r.Cv_serve.Serve.trigger_events
            r.Cv_serve.Serve.kappa);
      should_stop = (fun () -> Atomic.get stop_requested) }
  in
  let t = Cv_serve.Serve.run ~config ~net ~artifact ~source () in
  Printf.eprintf
    "serve: stopped (%s) after %d rounds  %d commits  %d seen  %d ood  %d \
     dropped  %d rejected  %d pending\n\
     %!"
    (Cv_serve.Serve.stop_reason_name t.Cv_serve.Serve.stop)
    t.Cv_serve.Serve.round_count t.Cv_serve.Serve.commits t.Cv_serve.Serve.seen
    t.Cv_serve.Serve.ood t.Cv_serve.Serve.dropped t.Cv_serve.Serve.rejected
    t.Cv_serve.Serve.pending;
  (* Mirror the batch exit discipline: proved and budget-exhausted
     rounds are expected outcomes; unsafe, inconclusive or crashed
     rounds make the service exit nonzero. *)
  if
    List.for_all
      (fun (r : Cv_serve.Serve.round) ->
        match r.Cv_serve.Serve.verdict with
        | Cv_core.Batch.Safe | Cv_core.Batch.Exhausted -> true
        | _ -> false)
      t.Cv_serve.Serve.rounds
  then Cmd.Exit.ok
  else 1

let serve_cmd =
  let model =
    Arg.(
      value
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:
            "Model file (contiver JSON format). Required unless \
             $(b,--drive) is given.")
  in
  let artifact =
    Arg.(
      value
      & opt (some file) None
      & info [ "artifact" ] ~docv:"FILE"
          ~doc:
            "Proof artifact of the property over the monitored box. \
             Required unless $(b,--drive) is given.")
  in
  let artifact_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifact-out" ] ~docv:"FILE"
          ~doc:
            "After every committed round, write the refreshed proof \
             artifact (enlarged domain, rebuilt abstractions) to $(docv).")
  in
  let drive =
    Arg.(
      value & flag
      & info [ "drive" ]
          ~doc:
            "Self-contained demo source: build the synthetic vehicle \
             experiment, certify the original property, then stream \
             features from the closed loop driving under drifting shifted \
             conditions.")
  in
  let drive_steps =
    Arg.(
      value & opt int 400
      & info [ "drive-steps" ] ~docv:"N"
          ~doc:"Frames to drive before the stream ends (default 400).")
  in
  let drive_seed =
    Arg.(
      value & opt int 123
      & info [ "drive-seed" ] ~docv:"N"
          ~doc:"Random seed of the drive source (default 123).")
  in
  let drive_burst =
    Arg.(
      value & opt int 8
      & info [ "drive-burst" ] ~docv:"N"
          ~doc:"Frames ingested per poll of the drive source (default 8).")
  in
  let drive_ramp =
    Arg.(
      value & opt float 0.005
      & info [ "drive-ramp" ] ~docv:"DELTA"
          ~doc:
            "Per-frame brightness drift of the drive source, so fresh \
             out-of-distribution events keep arriving (default 0.005).")
  in
  let max_rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "rounds" ] ~docv:"N"
          ~doc:"Stop after $(docv) verification rounds.")
  in
  let margin =
    Arg.(
      value & opt float 0.005
      & info [ "margin" ] ~docv:"DELTA"
          ~doc:
            "Padding added around each OOD event when enlarging the \
             monitored box (default 0.005).")
  in
  let trigger_events =
    Arg.(
      value & opt int 3
      & info [ "ood-events" ] ~docv:"N"
          ~doc:
            "Fire a re-verification round once this many OOD events are \
             pending (default 3).")
  in
  let trigger_kappa =
    Arg.(
      value
      & opt (some float) None
      & info [ "kappa" ] ~docv:"K"
          ~doc:
            "Also fire a round as soon as the enlargement distance κ \
             reaches $(docv) (off by default).")
  in
  let quiet =
    Arg.(
      value & opt int 0
      & info [ "quiet" ] ~docv:"N"
          ~doc:
            "Debounce: wait for $(docv) consecutive in-distribution \
             observations after the last OOD event before firing (waived \
             when the source is idle or has ended; default 0).")
  in
  let queue_capacity =
    Arg.(
      value & opt int 1024
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded ingestion queue capacity; on overflow the oldest \
             observation is dropped and counted (default 1024).")
  in
  let widen =
    Arg.(
      value & opt float 0.04
      & info [ "widen" ] ~docv:"SLACK"
          ~doc:
            "Widening slack of the abstraction chain rebuilt for a \
             committed box (default 0.04).")
  in
  let round_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-round verification budget; on expiry the round degrades \
             to a structured exhausted verdict and the box is not \
             committed.")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Durable serving state: the loop state (serve.state.json) \
             plus per-round search checkpoints and done-files, so a \
             killed daemon restarted with $(b,--resume-checkpoint) \
             replays finished rounds instead of re-verifying.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume-checkpoint" ]
          ~doc:
            "Resume from the state saved under $(b,--checkpoint-dir): \
             restore the monitored box, pending events and counters, \
             skip already-consumed drive frames, and replay completed \
             rounds from their done-files.")
  in
  let status_every =
    Arg.(
      value & opt float 10.
      & info [ "status-every" ] ~docv:"SECONDS"
          ~doc:
            "Minimum seconds between periodic status records on stdout \
             (one JSON object per line, schema \
             contiver-serve-status-v1); a record is also emitted after \
             every round and at shutdown (default 10).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the proof-artifact cache (every round builds cold).")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Back the artifact cache with durable entries in $(docv), so \
             restarted daemons reuse earlier rounds' artifacts.")
  in
  let cache_capacity =
    Arg.(
      value & opt int 256
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"In-memory cache entries before LRU eviction (default 256).")
  in
  let watch =
    Arg.(
      value
      & opt (some file) None
      & info [ "watch" ] ~docv:"FILE"
          ~doc:
            "Network file to watch; a content-fingerprint change (a \
             fine-tuned model dropped in place) triggers an SVbTV round. \
             Defaults to $(b,--model).")
  in
  let no_watch =
    Arg.(
      value & flag
      & info [ "no-watch" ] ~doc:"Do not watch any network file.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the continuous-verification service: ingest monitored \
          feature observations (NDJSON on stdin, or the simulated vehicle \
          with $(b,--drive)), debounce out-of-distribution events into \
          SVuDC re-verification rounds, watch for fine-tuned networks to \
          trigger SVbTV rounds, and commit enlarged domains back to the \
          monitor only on proved verdicts.")
    Term.(
      const serve $ verbose_arg $ model $ artifact $ artifact_out $ drive
      $ drive_steps $ drive_seed $ drive_burst $ drive_ramp $ max_rounds
      $ margin $ trigger_events $ trigger_kappa $ quiet $ queue_capacity
      $ engine_arg $ widen $ round_timeout $ checkpoint_dir
      $ checkpoint_every_arg $ resume $ status_every $ no_cache $ cache_dir
      $ cache_capacity $ watch $ no_watch $ stats_arg $ trace_json_arg)

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let doc = "continuous safety verification of neural networks" in
  let info = Cmd.info "contiver" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ generate_cmd; describe_cmd; verify_cmd; batch_cmd; serve_cmd;
            svudc_cmd; svbtv_cmd; check_cmd; chaos_cmd; range_cmd; diff_cmd;
            suspects_cmd; simulate_cmd; import_nnet_cmd; export_nnet_cmd ]))
