#!/usr/bin/env python3
"""Validate a `contiver serve` status stream (contiver-serve-status-v1).

Usage: check_serve_status.py FILE [EXPECTED_ROUNDS]

Every line must parse as a status record with the v1 schema; the last
record must be final, carry a stop reason, and (when EXPECTED_ROUNDS is
given) report that many rounds, all committed, with artifact-cache hits.
"""
import json
import sys


def main() -> None:
    path = sys.argv[1]
    expected_rounds = int(sys.argv[2]) if len(sys.argv) > 2 else None
    with open(path) as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    assert records, "no status records emitted"
    for rec in records:
        assert rec["schema"] == "contiver-serve-status-v1", rec
        for key in ("rounds", "commits", "events", "kappa", "box_width", "final"):
            assert key in rec, f"missing {key}: {rec}"
        for key in ("seen", "ood", "pending", "dropped", "rejected"):
            assert rec["events"][key] >= 0, rec
        assert rec["rounds"] >= rec["commits"] >= 0, rec
    final = records[-1]
    assert final["final"] is True, "last record is not final"
    assert "stop" in final, f"final record has no stop reason: {final}"
    if expected_rounds is not None:
        assert final["rounds"] == expected_rounds, final
        assert final["commits"] == expected_rounds, final
        cache = final.get("cache")
        assert cache and cache["hits"] > 0, f"no artifact-cache hits: {cache}"
    print(
        "ok: {} record(s), {} round(s), {} commit(s), stop={}".format(
            len(records), final["rounds"], final["commits"], final["stop"]
        )
    )


if __name__ == "__main__":
    main()
